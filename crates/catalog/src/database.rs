//! A database: catalog plus validated in-memory row storage.
//!
//! Storage keeps one B-tree index per candidate key (keyed by the key's
//! value tuple under `Value`'s canonical order, whose `Equal` coincides
//! with `=̇`), so key-uniqueness validation and foreign-key lookups are
//! `O(log n)` per row rather than a scan — instances of benchmark size
//! load in linear-log time.

use crate::catalog::Catalog;
use crate::table::{IndexDef, TableSchema};
use crate::validate;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;
use uniq_sql::{CreateIndex, IndexKindAst, Insert, Statement};
use uniq_types::{Error, Result, TableName, Value};

/// One stored row.
pub type Row = Vec<Value>;

/// One persistent secondary index structure: key tuple → positions of
/// every row carrying that key (a unique index stores one position per
/// tuple by construction; uniqueness itself is enforced through the
/// candidate-key machinery the index registers).
#[derive(Debug, Clone)]
enum SecondaryIndex {
    /// Point probes only, O(1).
    Hash(HashMap<Vec<Value>, Vec<usize>>),
    /// Ordered (`BTreeMap` under `Value`'s canonical order, whose
    /// `Equal` coincides with `=̇`): point probes and range scans.
    Tree(BTreeMap<Vec<Value>, Vec<usize>>),
}

impl SecondaryIndex {
    fn empty(ordered: bool) -> SecondaryIndex {
        if ordered {
            SecondaryIndex::Tree(BTreeMap::new())
        } else {
            SecondaryIndex::Hash(HashMap::new())
        }
    }

    fn add(&mut self, key: Vec<Value>, pos: usize) {
        match self {
            SecondaryIndex::Hash(m) => m.entry(key).or_default().push(pos),
            SecondaryIndex::Tree(m) => m.entry(key).or_default().push(pos),
        }
    }

    fn get(&self, key: &[Value]) -> &[usize] {
        match self {
            SecondaryIndex::Hash(m) => m.get(key),
            SecondaryIndex::Tree(m) => m.get(key),
        }
        .map(|v| v.as_slice())
        .unwrap_or(&[])
    }

    fn clear(&mut self) {
        match self {
            SecondaryIndex::Hash(m) => m.clear(),
            SecondaryIndex::Tree(m) => m.clear(),
        }
    }

    fn entries(&self) -> Vec<(Vec<Value>, Vec<usize>)> {
        let mut out: Vec<(Vec<Value>, Vec<usize>)> = match self {
            SecondaryIndex::Hash(m) => m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            SecondaryIndex::Tree(m) => m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        };
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }
}

#[derive(Debug, Clone, Default)]
struct TableData {
    rows: Vec<Row>,
    /// One index per candidate key, parallel to
    /// `TableSchema::candidate_keys()` order: key tuple → row position.
    key_indexes: Vec<BTreeMap<Vec<Value>, usize>>,
    /// One structure per secondary index, parallel to
    /// `TableSchema::indexes` order.
    secondary: Vec<SecondaryIndex>,
}

/// A catalog together with table instances. Every row admitted through
/// [`Database::insert`] satisfies all declared constraints (shape, type,
/// `CHECK`s, key uniqueness with `=̇` semantics, foreign keys), so
/// instances are always *valid* in the paper's sense.
///
/// Table contents sit behind per-table [`Arc`]s, so `Database::clone` is
/// a *structural-sharing* copy: it duplicates only the catalog and the
/// table map, not the rows. A mutation on a clone copies just the
/// touched table's storage (copy-on-write via [`Arc::make_mut`]) — the
/// primitive the MVCC snapshot chain in [`crate::snapshot`] is built on.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    data: BTreeMap<TableName, Arc<TableData>>,
    /// Monotonic schema version; see [`Database::version`].
    version: u64,
}

fn key_tuple(columns: &[usize], row: &[Value]) -> Vec<Value> {
    columns.iter().map(|&c| row[c].clone()).collect()
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The schema registry.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The monotonic catalog version, bumped by every schema-affecting
    /// mutation (`CREATE TABLE`, `CREATE INDEX`, `truncate`). Compiled
    /// plans reference schema *and* the index set — never row data — so
    /// plain `INSERT`s leave the version unchanged, while `CREATE INDEX`
    /// must bump it so cached full-scan plans re-plan and can pick up the
    /// new access path; the plan cache uses this to decide whether a
    /// cached plan is still valid.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Register a table schema with empty contents.
    ///
    /// Foreign keys are checked structurally here: the referenced table
    /// must already exist (or be this table itself) and the referenced
    /// columns must form a candidate key of it, with matching types.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        for fk in schema.foreign_keys() {
            let parent = if fk.parent == schema.name {
                &schema
            } else {
                self.catalog.table(&fk.parent)?
            };
            let mut parent_positions: Vec<usize> = fk
                .parent_columns
                .iter()
                .map(|c| parent.column_position(c))
                .collect::<Result<_>>()?;
            parent_positions.sort_unstable();
            if !parent
                .candidate_keys()
                .any(|k| k.columns == parent_positions)
            {
                return Err(Error::bind(format!(
                    "foreign key on {} references non-key columns of {}",
                    schema.name, fk.parent
                )));
            }
            for (&child, parent_col) in fk.columns.iter().zip(&fk.parent_columns) {
                let p = parent.column_position(parent_col)?;
                if schema.columns[child].data_type != parent.columns[p].data_type {
                    return Err(Error::bind(format!(
                        "foreign key column {} of {} has a different type than {}.{}",
                        schema.columns[child].name, schema.name, fk.parent, parent_col
                    )));
                }
            }
        }
        let name = schema.name.clone();
        let n_keys = schema.candidate_keys().count();
        self.catalog.create_table(schema)?;
        self.data.insert(
            name,
            Arc::new(TableData {
                rows: Vec::new(),
                key_indexes: vec![BTreeMap::new(); n_keys],
                secondary: Vec::new(),
            }),
        );
        self.version += 1;
        Ok(())
    }

    /// Apply a parsed `CREATE [UNIQUE] INDEX`: validate, backfill the
    /// structure from the existing rows, register the metadata and bump
    /// the catalog version (cached plans must re-plan to see the new
    /// access path).
    ///
    /// A unique index declares its column set a candidate key — the new
    /// uniqueness source feeding Algorithm 1 — so backfill rejects the
    /// statement with the *same* violation error a declared key produces
    /// when existing rows already duplicate a key value, and subsequent
    /// `INSERT`s enforce it exactly like a declared `UNIQUE` constraint
    /// (null-as-special-value semantics included).
    pub fn create_index(&mut self, ast: &CreateIndex) -> Result<()> {
        let schema = self.catalog.table(&ast.table)?;
        if let Some(owner) = self.catalog.index_owner(&ast.name) {
            return Err(Error::bind(format!(
                "index {} already exists on table {}",
                ast.name, owner.name
            )));
        }
        let columns: Vec<usize> = ast
            .columns
            .iter()
            .map(|c| schema.column_position(c))
            .collect::<Result<_>>()?;
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(Error::bind(format!(
                    "duplicate column {} in index {}",
                    schema.columns[*c].name, ast.name
                )));
            }
        }
        let def = IndexDef {
            name: ast.name.clone(),
            columns,
            unique: ast.unique,
            ordered: ast.kind == IndexKindAst::BTree,
        };

        // Backfill from the stored rows before mutating anything, so a
        // failed CREATE INDEX leaves the database untouched.
        let data = self
            .data
            .get(&ast.table)
            .ok_or_else(|| Error::UnknownTable(ast.table.to_string()))?;
        let mut sec = SecondaryIndex::empty(def.ordered);
        for (pos, row) in data.rows.iter().enumerate() {
            sec.add(key_tuple(&def.columns, row), pos);
        }
        let mut sorted = def.columns.clone();
        sorted.sort_unstable();
        let needs_key = def.unique && !schema.candidate_keys().any(|k| k.columns == sorted);
        let mut key_index: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
        if needs_key {
            for (pos, row) in data.rows.iter().enumerate() {
                if key_index.insert(key_tuple(&sorted, row), pos).is_some() {
                    let desc: Vec<String> = sorted
                        .iter()
                        .map(|&i| format!("{}={}", schema.columns[i].name, row[i]))
                        .collect();
                    return Err(Error::ConstraintViolation {
                        table: ast.table.to_string(),
                        message: format!("unique key violation on ({})", desc.join(", ")),
                    });
                }
            }
        }

        let appended = self.catalog.table_mut(&ast.table)?.add_index(def);
        debug_assert_eq!(appended, needs_key);
        let data = Arc::make_mut(self.data.get_mut(&ast.table).expect("checked above"));
        data.secondary.push(sec);
        if needs_key {
            data.key_indexes.push(key_index);
        }
        self.version += 1;
        Ok(())
    }

    /// Positions of the rows whose index key equals `key` (point probe).
    /// A probe containing `NULL` matches nothing: no SQL comparison
    /// predicate is *true* of `NULL`, so a sargable probe cannot reach
    /// null-keyed entries.
    pub fn index_probe(&self, table: &TableName, index: &str, key: &[Value]) -> Result<&[usize]> {
        let (_, sec) = self.secondary_index(table, index)?;
        if key.iter().any(|v| v.is_null()) {
            return Ok(&[]);
        }
        Ok(sec.get(key))
    }

    /// Positions of the rows whose index key starts with `prefix`
    /// (point-bound columns) and whose next component lies in
    /// `[low, high]` — the sargable range-scan primitive. With both
    /// bounds unbounded this is a prefix probe (trailing columns
    /// unconstrained, so null-keyed suffixes *do* match). Range scans
    /// need an ordered index; hash indexes answer point probes only.
    pub fn index_range(
        &self,
        table: &TableName,
        index: &str,
        prefix: &[Value],
        low: Bound<&Value>,
        high: Bound<&Value>,
    ) -> Result<Vec<usize>> {
        let (def, sec) = self.secondary_index(table, index)?;
        if prefix.iter().any(|v| v.is_null()) {
            return Ok(Vec::new());
        }
        if prefix.len() >= def.columns.len() {
            return Ok(sec.get(prefix).to_vec());
        }
        let tree = match sec {
            SecondaryIndex::Tree(t) => t,
            SecondaryIndex::Hash(_) => {
                return Err(Error::internal(format!(
                    "index {index} is a hash index: prefix and range scans need USING BTREE"
                )))
            }
        };
        let mut out = Vec::new();
        // Every stored key is longer than `prefix`, and a shorter vector
        // sorts before all its extensions, so the range starts exactly at
        // the prefix group.
        for (key, positions) in tree.range((Bound::Included(prefix.to_vec()), Bound::Unbounded)) {
            if !key.starts_with(prefix) {
                break;
            }
            let c = &key[prefix.len()];
            if c.is_null() {
                // NULL satisfies a bound never, an unconstrained scan
                // always; canonical order puts it first in the group.
                if !(matches!(low, Bound::Unbounded) && matches!(high, Bound::Unbounded)) {
                    continue;
                }
            } else {
                match high {
                    // Keys in one prefix group ascend by this component
                    // (NULLs first), so the first overshoot ends the scan.
                    Bound::Included(v) if c > v => break,
                    Bound::Excluded(v) if c >= v => break,
                    _ => {}
                }
                match low {
                    Bound::Included(v) if c < v => continue,
                    Bound::Excluded(v) if c <= v => continue,
                    _ => {}
                }
            }
            out.extend_from_slice(positions);
        }
        Ok(out)
    }

    /// The full contents of a secondary index in canonical key order —
    /// the rebuild-agreement oracle for property tests.
    pub fn index_entries(
        &self,
        table: &TableName,
        index: &str,
    ) -> Result<Vec<(Vec<Value>, Vec<usize>)>> {
        let (_, sec) = self.secondary_index(table, index)?;
        Ok(sec.entries())
    }

    fn secondary_index(
        &self,
        table: &TableName,
        index: &str,
    ) -> Result<(&IndexDef, &SecondaryIndex)> {
        let schema = self.catalog.table(table)?;
        let i = schema
            .indexes
            .iter()
            .position(|ix| ix.name == index)
            .ok_or_else(|| Error::internal(format!("no index {index} on {table}")))?;
        let data = self
            .data
            .get(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        Ok((&schema.indexes[i], &data.secondary[i]))
    }

    /// Insert one row after full validation (shape, checks, keys, FKs).
    pub fn insert(&mut self, table: &TableName, row: Row) -> Result<()> {
        let schema = self.catalog.table(table)?;
        validate::validate_shape(schema, &row)?;
        validate::validate_checks(schema, &row)?;

        // Key uniqueness via the indexes.
        let data = self
            .data
            .get(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        let keys: Vec<_> = schema.candidate_keys().collect();
        let mut tuples: Vec<Vec<Value>> = Vec::with_capacity(keys.len());
        for (key, index) in keys.iter().zip(&data.key_indexes) {
            let tuple = key_tuple(&key.columns, &row);
            if index.contains_key(&tuple) {
                let desc: Vec<String> = key
                    .columns
                    .iter()
                    .map(|&i| format!("{}={}", schema.columns[i].name, row[i]))
                    .collect();
                return Err(Error::ConstraintViolation {
                    table: table.to_string(),
                    message: format!(
                        "{} key violation on ({})",
                        if key.primary { "primary" } else { "unique" },
                        desc.join(", ")
                    ),
                });
            }
            tuples.push(tuple);
        }

        // Foreign keys: a row with all-non-null FK columns must have a
        // matching parent (SQL's "simple match" lets any-NULL rows pass).
        for fk in schema.foreign_keys() {
            let child_tuple = key_tuple(&fk.columns, &row);
            if child_tuple.iter().any(|v| v.is_null()) {
                continue;
            }
            if !self.parent_exists(&fk.parent, &fk.parent_columns, &child_tuple)? {
                return Err(Error::ConstraintViolation {
                    table: table.to_string(),
                    message: format!(
                        "foreign key violation: no {} row with ({}) = ({})",
                        fk.parent,
                        fk.parent_columns
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        child_tuple
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }

        // Incremental maintenance of the secondary indexes (uniqueness
        // was already enforced above through the registered keys).
        let secondary_tuples: Vec<Vec<Value>> = schema
            .indexes
            .iter()
            .map(|ix| key_tuple(&ix.columns, &row))
            .collect();
        let data = Arc::make_mut(self.data.get_mut(table).expect("checked above"));
        let pos = data.rows.len();
        for (index, tuple) in data.key_indexes.iter_mut().zip(tuples) {
            index.insert(tuple, pos);
        }
        for (sec, tuple) in data.secondary.iter_mut().zip(secondary_tuples) {
            sec.add(tuple, pos);
        }
        data.rows.push(row);
        Ok(())
    }

    /// Does the parent table contain a row whose `parent_columns` equal
    /// `tuple`? Uses the parent's candidate-key index (FKs reference
    /// candidate keys, enforced at `create_table`).
    fn parent_exists(
        &self,
        parent: &TableName,
        parent_columns: &[uniq_types::ColumnName],
        tuple: &[Value],
    ) -> Result<bool> {
        let schema = self.catalog.table(parent)?;
        let data = self
            .data
            .get(parent)
            .ok_or_else(|| Error::UnknownTable(parent.to_string()))?;
        let mut positions: Vec<usize> = parent_columns
            .iter()
            .map(|c| schema.column_position(c))
            .collect::<Result<_>>()?;
        // The index key tuple follows the key's sorted column order;
        // reorder the probe accordingly.
        let mut paired: Vec<(usize, &Value)> = positions.iter().copied().zip(tuple).collect();
        paired.sort_by_key(|(p, _)| *p);
        positions.sort_unstable();
        let key_idx = schema
            .candidate_keys()
            .position(|k| k.columns == positions)
            .ok_or_else(|| Error::internal("FK references a non-key (checked at create)"))?;
        let probe: Vec<Value> = paired.into_iter().map(|(_, v)| v.clone()).collect();
        Ok(data.key_indexes[key_idx].contains_key(&probe))
    }

    /// Insert one row *without* validation.
    ///
    /// Only for building intentionally adversarial instances in tests
    /// (e.g. demonstrating what would go wrong if a constraint did not
    /// hold). Never used by the optimizer or executor. Key indexes keep
    /// the *first* row for any duplicated key value.
    pub fn insert_unchecked(&mut self, table: &TableName, row: Row) -> Result<()> {
        let schema = self.catalog.table(table)?.clone();
        let data = Arc::make_mut(
            self.data
                .get_mut(table)
                .ok_or_else(|| Error::UnknownTable(table.to_string()))?,
        );
        let pos = data.rows.len();
        for (key, index) in schema.candidate_keys().zip(data.key_indexes.iter_mut()) {
            index.entry(key_tuple(&key.columns, &row)).or_insert(pos);
        }
        for (ix, sec) in schema.indexes.iter().zip(data.secondary.iter_mut()) {
            sec.add(key_tuple(&ix.columns, &row), pos);
        }
        data.rows.push(row);
        Ok(())
    }

    /// All rows of a table.
    pub fn rows(&self, table: &TableName) -> Result<&[Row]> {
        self.data
            .get(table)
            .map(|d| d.rows.as_slice())
            .ok_or_else(|| Error::UnknownTable(table.to_string()))
    }

    /// Look up a row by candidate-key value. `key_columns` must be one of
    /// the table's candidate keys (sorted positions).
    pub fn lookup_by_key(
        &self,
        table: &TableName,
        key_columns: &[usize],
        key_values: &[Value],
    ) -> Result<Option<&Row>> {
        let schema = self.catalog.table(table)?;
        let data = self
            .data
            .get(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        let key_idx = schema
            .candidate_keys()
            .position(|k| k.columns == key_columns)
            .ok_or_else(|| {
                Error::internal(format!("{table} has no candidate key {key_columns:?}"))
            })?;
        Ok(data.key_indexes[key_idx]
            .get(key_values)
            .map(|&pos| &data.rows[pos]))
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &TableName) -> Result<usize> {
        self.rows(table).map(|r| r.len())
    }

    /// Do `self` and `other` share the *same* underlying storage for
    /// `table` (same `Arc`, not merely equal contents)? This is the
    /// observable face of copy-on-write cloning: after `let b =
    /// a.clone()`, every table shares storage; after a write to one
    /// table of `b`, only that table's storage diverges. Used by the
    /// MVCC snapshot tests to prove writes clone nothing they did not
    /// touch.
    pub fn shares_storage(&self, other: &Database, table: &TableName) -> bool {
        match (self.data.get(table), other.data.get(table)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// The rows `newer` appended to `table` since `self`, if that delta
    /// can be extracted soundly:
    ///
    /// * shared storage (`Arc::ptr_eq`) ⇒ `Some(&[])` in O(1), no row
    ///   comparison — the pointer-equality fast path for untouched
    ///   tables;
    /// * equal catalog versions with `newer` at least as long ⇒ the
    ///   suffix `&newer.rows[self.len..]`. Plain `INSERT`s are the only
    ///   mutation that leaves the version unchanged (`truncate` and all
    ///   DDL bump it), so equal versions guarantee insert-only growth
    ///   and the suffix *is* the delta;
    /// * anything else (version changed, table missing, shrunk rows) ⇒
    ///   `None` — the caller must fall back to a full recompute.
    pub fn table_delta<'a>(&self, newer: &'a Database, table: &TableName) -> Option<&'a [Row]> {
        let old = self.data.get(table)?;
        let new = newer.data.get(table)?;
        if Arc::ptr_eq(old, new) {
            return Some(&[]);
        }
        if self.version == newer.version && new.rows.len() >= old.rows.len() {
            return Some(&new.rows[old.rows.len()..]);
        }
        None
    }

    /// Remove all rows of a table (schema stays).
    pub fn truncate(&mut self, table: &TableName) -> Result<()> {
        self.data
            .get_mut(table)
            .map(Arc::make_mut)
            .map(|d| {
                d.rows.clear();
                for idx in &mut d.key_indexes {
                    idx.clear();
                }
                for sec in &mut d.secondary {
                    sec.clear();
                }
            })
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        self.version += 1;
        Ok(())
    }

    /// Apply a parsed statement: `CREATE TABLE`, `CREATE INDEX` or
    /// `INSERT`. Queries are rejected here — they go through the
    /// planner/executor.
    pub fn apply(&mut self, stmt: &Statement) -> Result<()> {
        match stmt {
            Statement::CreateTable(ct) => self.create_table(TableSchema::from_ast(ct)?),
            Statement::CreateIndex(ci) => self.create_index(ci),
            Statement::Insert(ins) => self.apply_insert(ins),
            Statement::Query(_) => Err(Error::internal(
                "queries are executed by uniq-engine, not Database::apply",
            )),
        }
    }

    /// Apply a parsed `INSERT`, reordering values when an explicit column
    /// list was given and filling unnamed columns with `NULL`.
    pub fn apply_insert(&mut self, ins: &Insert) -> Result<()> {
        let schema = self.catalog.table(&ins.table)?;
        let arity = schema.arity();
        let positions: Option<Vec<usize>> = match &ins.columns {
            None => None,
            Some(cols) => Some(
                cols.iter()
                    .map(|c| schema.column_position(c))
                    .collect::<Result<_>>()?,
            ),
        };
        let table = ins.table.clone();
        for literal_row in &ins.rows {
            let row: Row = match &positions {
                None => {
                    if literal_row.len() != arity {
                        return Err(Error::ConstraintViolation {
                            table: table.to_string(),
                            message: format!(
                                "INSERT supplies {} values for {} columns",
                                literal_row.len(),
                                arity
                            ),
                        });
                    }
                    literal_row.clone()
                }
                Some(pos) => {
                    if literal_row.len() != pos.len() {
                        return Err(Error::ConstraintViolation {
                            table: table.to_string(),
                            message: "INSERT value count does not match column list".into(),
                        });
                    }
                    let mut row = vec![Value::Null; arity];
                    for (&p, v) in pos.iter().zip(literal_row) {
                        row[p] = v.clone();
                    }
                    row
                }
            };
            self.insert(&table, row)?;
        }
        Ok(())
    }

    /// Run a whole DDL/DML script (used by tests and examples).
    pub fn run_script(&mut self, sql: &str) -> Result<()> {
        for stmt in uniq_sql::parse_statements(sql)? {
            self.apply(&stmt)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_builds_and_populates() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 'x'), (2, 'y');
             INSERT INTO T (B, A) VALUES ('z', 3);",
        )
        .unwrap();
        let rows = db.rows(&"T".into()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec![Value::Int(3), Value::str("z")]);
    }

    #[test]
    fn insert_violating_key_fails() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        assert!(db.insert(&"T".into(), vec![Value::Int(1)]).is_err());
        assert_eq!(db.row_count(&"T".into()).unwrap(), 1);
    }

    #[test]
    fn unique_key_null_special_value_via_index() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER NOT NULL, B INTEGER, PRIMARY KEY (A), UNIQUE (B));
             INSERT INTO T VALUES (1, NULL);",
        )
        .unwrap();
        // Second NULL in the UNIQUE column: rejected (=̇ key semantics).
        assert!(db
            .insert(&"T".into(), vec![Value::Int(2), Value::Null])
            .is_err());
        assert!(db
            .insert(&"T".into(), vec![Value::Int(2), Value::Int(9)])
            .is_ok());
    }

    #[test]
    fn missing_columns_fill_with_null() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER, B VARCHAR); INSERT INTO T (A) VALUES (1);")
            .unwrap();
        assert_eq!(db.rows(&"T".into()).unwrap()[0][1], Value::Null);
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        db.truncate(&"T".into()).unwrap();
        assert_eq!(db.row_count(&"T".into()).unwrap(), 0);
        // Key slot freed by truncate.
        db.insert(&"T".into(), vec![Value::Int(1)]).unwrap();
    }

    #[test]
    fn unchecked_insert_bypasses_validation() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        db.insert_unchecked(&"T".into(), vec![Value::Int(1)])
            .unwrap();
        assert_eq!(db.row_count(&"T".into()).unwrap(), 2);
    }

    #[test]
    fn lookup_by_key_uses_index() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 'x'), (2, 'y');",
        )
        .unwrap();
        let row = db
            .lookup_by_key(&"T".into(), &[0], &[Value::Int(2)])
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::str("y"));
        assert!(db
            .lookup_by_key(&"T".into(), &[0], &[Value::Int(99)])
            .unwrap()
            .is_none());
    }

    #[test]
    fn foreign_key_enforced() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE PARENT (K INTEGER, PRIMARY KEY (K));
             CREATE TABLE CHILD (C INTEGER, FK INTEGER,
               PRIMARY KEY (C),
               FOREIGN KEY (FK) REFERENCES PARENT (K));
             INSERT INTO PARENT VALUES (1);",
        )
        .unwrap();
        // Valid reference.
        db.run_script("INSERT INTO CHILD VALUES (10, 1)").unwrap();
        // Dangling reference.
        let err = db
            .run_script("INSERT INTO CHILD VALUES (11, 99)")
            .unwrap_err();
        assert!(err.to_string().contains("foreign key"), "{err}");
        // NULL FK passes (simple match).
        db.run_script("INSERT INTO CHILD VALUES (12, NULL)")
            .unwrap();
    }

    #[test]
    fn foreign_key_must_reference_a_key() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE PARENT (K INTEGER, V INTEGER, PRIMARY KEY (K));")
            .unwrap();
        let err = db
            .run_script("CREATE TABLE CHILD (C INTEGER, FOREIGN KEY (C) REFERENCES PARENT (V));")
            .unwrap_err();
        assert!(err.to_string().contains("non-key"), "{err}");
    }

    #[test]
    fn foreign_key_type_mismatch_rejected() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE PARENT (K INTEGER, PRIMARY KEY (K));")
            .unwrap();
        let err = db
            .run_script("CREATE TABLE CHILD (C VARCHAR, FOREIGN KEY (C) REFERENCES PARENT (K));")
            .unwrap_err();
        assert!(err.to_string().contains("different type"), "{err}");
    }

    #[test]
    fn foreign_key_to_missing_table_rejected() {
        let mut db = Database::new();
        assert!(db
            .run_script("CREATE TABLE CHILD (C INTEGER, FOREIGN KEY (C) REFERENCES NOPE (K));")
            .is_err());
    }

    #[test]
    fn version_tracks_schema_mutations() {
        let mut db = Database::new();
        assert_eq!(db.version(), 0);
        db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A));")
            .unwrap();
        let v1 = db.version();
        assert!(v1 > 0);
        db.run_script("INSERT INTO T VALUES (1);").unwrap();
        assert_eq!(
            db.version(),
            v1,
            "plans are schema-only; inserts keep them valid"
        );
        db.truncate(&"T".into()).unwrap();
        assert!(db.version() > v1);
    }

    #[test]
    fn create_index_backfills_and_maintains() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 'x'), (2, 'y'), (3, 'x');
             CREATE INDEX IDX_B ON T (B);",
        )
        .unwrap();
        let t = "T".into();
        assert_eq!(
            db.index_probe(&t, "IDX_B", &[Value::str("x")]).unwrap(),
            &[0, 2]
        );
        // Incremental maintenance on later inserts.
        db.run_script("INSERT INTO T VALUES (4, 'x');").unwrap();
        assert_eq!(
            db.index_probe(&t, "IDX_B", &[Value::str("x")]).unwrap(),
            &[0, 2, 3]
        );
        assert!(db
            .index_probe(&t, "IDX_B", &[Value::str("z")])
            .unwrap()
            .is_empty());
        // NULL probes match nothing.
        assert!(db
            .index_probe(&t, "IDX_B", &[Value::Null])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unique_index_registers_key_and_enforces() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 10);
             CREATE UNIQUE INDEX IDX_B ON T (B);",
        )
        .unwrap();
        let t: TableName = "T".into();
        // The index registered a candidate key Algorithm 1 can use.
        let schema = db.catalog().table(&t).unwrap();
        assert_eq!(schema.candidate_keys().count(), 2);
        assert_eq!(
            schema.key_index_name(schema.candidate_keys().nth(1).unwrap()),
            Some("IDX_B")
        );
        // The violation error matches a declared UNIQUE constraint's.
        let err = db
            .insert(&t, vec![Value::Int(2), Value::Int(10)])
            .unwrap_err();
        assert!(
            err.to_string().contains("unique key violation on (B=10)"),
            "{err}"
        );
        // Null-as-special-value: at most one NULL key.
        db.insert(&t, vec![Value::Int(3), Value::Null]).unwrap();
        assert!(db.insert(&t, vec![Value::Int(4), Value::Null]).is_err());
    }

    #[test]
    fn unique_index_backfill_rejects_existing_duplicates() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 10), (2, 10);",
        )
        .unwrap();
        let err = db
            .run_script("CREATE UNIQUE INDEX IDX_B ON T (B);")
            .unwrap_err();
        assert!(err.to_string().contains("unique key violation"), "{err}");
        // Failed DDL leaves no trace.
        let schema = db.catalog().table(&"T".into()).unwrap();
        assert!(schema.indexes.is_empty());
        assert_eq!(schema.candidate_keys().count(), 1);
        db.insert(&"T".into(), vec![Value::Int(3), Value::Int(10)])
            .unwrap();
    }

    #[test]
    fn index_range_scans_ordered_index() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 5), (2, 7), (3, 9), (4, NULL), (5, 7);
             CREATE INDEX IDX_B ON T (B);",
        )
        .unwrap();
        let t: TableName = "T".into();
        let range = |low: Bound<&Value>, high: Bound<&Value>| {
            db.index_range(&t, "IDX_B", &[], low, high).unwrap()
        };
        assert_eq!(
            range(
                Bound::Included(&Value::Int(6)),
                Bound::Included(&Value::Int(9))
            ),
            vec![1, 4, 2]
        );
        assert_eq!(
            range(Bound::Excluded(&Value::Int(7)), Bound::Unbounded),
            vec![2]
        );
        assert_eq!(
            range(Bound::Unbounded, Bound::Excluded(&Value::Int(7))),
            vec![0]
        );
        // Bounded scans never reach NULL keys; an unconstrained prefix
        // scan (here: the whole index) does.
        assert_eq!(
            range(Bound::Unbounded, Bound::Unbounded),
            vec![3, 0, 1, 4, 2]
        );
    }

    #[test]
    fn index_prefix_probe_on_composite_index() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B INTEGER, C INTEGER, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 7, 1), (2, 7, 5), (3, 8, 1), (4, 7, NULL);
             CREATE INDEX IDX_BC ON T (B, C);",
        )
        .unwrap();
        let t: TableName = "T".into();
        // Prefix probe: B = 7, C unconstrained (NULL C rows match).
        assert_eq!(
            db.index_range(
                &t,
                "IDX_BC",
                &[Value::Int(7)],
                Bound::Unbounded,
                Bound::Unbounded
            )
            .unwrap(),
            vec![3, 0, 1]
        );
        // Prefix + range on the next component.
        assert_eq!(
            db.index_range(
                &t,
                "IDX_BC",
                &[Value::Int(7)],
                Bound::Included(&Value::Int(2)),
                Bound::Unbounded
            )
            .unwrap(),
            vec![1]
        );
    }

    #[test]
    fn hash_index_probes_but_rejects_ranges() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 5), (2, 7);
             CREATE INDEX IDX_B ON T (B) USING HASH;",
        )
        .unwrap();
        let t: TableName = "T".into();
        assert_eq!(db.index_probe(&t, "IDX_B", &[Value::Int(7)]).unwrap(), &[1]);
        assert!(db
            .index_range(
                &t,
                "IDX_B",
                &[],
                Bound::Included(&Value::Int(5)),
                Bound::Unbounded
            )
            .is_err());
    }

    #[test]
    fn duplicate_index_name_rejected_across_tables() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER); CREATE TABLE U (A INTEGER);
             CREATE INDEX IDX ON T (A);",
        )
        .unwrap();
        let err = db.run_script("CREATE INDEX IDX ON U (A);").unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        assert!(db.run_script("CREATE INDEX IDX2 ON U (A);").is_ok());
    }

    #[test]
    fn create_index_bumps_catalog_version() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER);").unwrap();
        let v = db.version();
        db.run_script("CREATE INDEX IDX_A ON T (A);").unwrap();
        assert!(
            db.version() > v,
            "CREATE INDEX must invalidate cached plans"
        );
    }

    #[test]
    fn unique_index_on_existing_key_adds_no_duplicate_key() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, PRIMARY KEY (A));
             INSERT INTO T VALUES (1);
             CREATE UNIQUE INDEX IDX_A ON T (A);",
        )
        .unwrap();
        let schema = db.catalog().table(&"T".into()).unwrap();
        assert_eq!(schema.candidate_keys().count(), 1, "key already declared");
        assert_eq!(schema.indexes.len(), 1);
        // Enforcement still single-sourced through the primary key.
        assert!(db.insert(&"T".into(), vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn index_entries_match_a_from_scratch_rebuild() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
             CREATE INDEX IDX_B ON T (B);
             INSERT INTO T VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, NULL);",
        )
        .unwrap();
        let t: TableName = "T".into();
        let mut rebuilt: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
        for (pos, row) in db.rows(&t).unwrap().iter().enumerate() {
            rebuilt.entry(vec![row[1].clone()]).or_default().push(pos);
        }
        let want: Vec<(Vec<Value>, Vec<usize>)> = rebuilt.into_iter().collect();
        assert_eq!(db.index_entries(&t, "IDX_B").unwrap(), want);
    }

    #[test]
    fn bulk_insert_is_fast_enough_with_indexes() {
        // 20k rows with two candidate keys: must be well under a second.
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER NOT NULL, B INTEGER, PRIMARY KEY (A), UNIQUE (B));",
        )
        .unwrap();
        let t = std::time::Instant::now();
        for i in 0..20_000i64 {
            db.insert(&"T".into(), vec![Value::Int(i), Value::Int(i + 1_000_000)])
                .unwrap();
        }
        assert!(
            t.elapsed() < std::time::Duration::from_secs(5),
            "indexed insert too slow: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn table_delta_extracts_insert_suffixes() {
        let mut old = Database::new();
        old.run_script(
            "CREATE TABLE T (A INTEGER, PRIMARY KEY (A));
             CREATE TABLE U (B INTEGER, PRIMARY KEY (B));
             INSERT INTO T VALUES (1), (2);",
        )
        .unwrap();
        let mut new = old.clone();
        new.run_script("INSERT INTO T VALUES (3), (4);").unwrap();
        // Touched table: the delta is exactly the appended suffix.
        assert_eq!(
            old.table_delta(&new, &"T".into()).unwrap(),
            &[vec![Value::Int(3)], vec![Value::Int(4)]]
        );
        // Untouched table: shared Arc, empty delta without comparing rows.
        assert!(old.shares_storage(&new, &"U".into()));
        assert_eq!(old.table_delta(&new, &"U".into()).unwrap(), &[] as &[Row]);
        // Self-delta is always empty.
        assert_eq!(new.table_delta(&new, &"T".into()).unwrap(), &[] as &[Row]);
    }

    #[test]
    fn table_delta_refuses_non_insert_histories() {
        let mut old = Database::new();
        old.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        // truncate bumps the version: a shrunken table is not a delta.
        let mut truncated = old.clone();
        truncated.truncate(&"T".into()).unwrap();
        assert_eq!(old.table_delta(&truncated, &"T".into()), None);
        // DDL bumps the version too, even though T's rows only grew.
        let mut ddl = old.clone();
        ddl.run_script("CREATE TABLE W (C INTEGER); INSERT INTO T VALUES (2);")
            .unwrap();
        assert_eq!(old.table_delta(&ddl, &"T".into()), None);
        // Unknown table on either side.
        assert_eq!(old.table_delta(&ddl, &"MISSING".into()), None);
    }
}
