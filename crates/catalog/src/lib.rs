//! Schemas, constraints, and in-memory table storage.
//!
//! This crate holds the *semantic information the paper exploits* (§2.1):
//!
//! * **Key constraints** — `PRIMARY KEY` (columns implicitly `NOT NULL`)
//!   and `UNIQUE` candidate keys where key columns may be `NULL` but SQL2
//!   treats `NULL` as a *special value*: an instance may contain at most
//!   one tuple per `=̇`-equivalence class of key values, so e.g. only one
//!   row of `PARTS` may have `OEM-PNO = NULL`.
//! * **Check constraints** — search conditions every row must satisfy,
//!   evaluated *true-interpreted* (`⌈·⌉`): a row violates a `CHECK` only
//!   when the condition is definitely false.
//!
//! [`Database`] couples a [`Catalog`] with row storage and enforces all of
//! the above on every insert, so any instance reachable through this crate
//! is a *valid instance* in the paper's sense — the precondition for every
//! theorem.
//!
//! [`sample`] builds the paper's Figure 1 supplier database, used by the
//! examples, tests and benchmarks throughout the workspace.

pub mod catalog;
pub mod database;
pub mod sample;
pub mod snapshot;
pub mod table;
pub mod validate;

pub use catalog::Catalog;
pub use database::{Database, Row};
pub use snapshot::SnapshotStore;
pub use table::{ColumnDef, ForeignKey, IndexDef, Key, TableConstraint, TableSchema};
