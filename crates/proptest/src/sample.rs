//! Sampling strategies: the `prop::sample::subsequence` subset.

use crate::{SizeRange, Strategy, TestRng};

/// Strategy choosing a random subsequence (order-preserving subset) of
/// `values`, with a length drawn from `size`. The length is clamped to
/// `values.len()`, like the real crate requires it to fit.
pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> SubsequenceStrategy<T> {
    let size = size.into();
    assert!(
        size.lo <= values.len(),
        "subsequence minimum length {} exceeds source length {}",
        size.lo,
        values.len()
    );
    SubsequenceStrategy { values, size }
}

/// The result of [`subsequence`].
#[derive(Clone)]
pub struct SubsequenceStrategy<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for SubsequenceStrategy<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.size.sample(rng).min(self.values.len());
        // Reservoir-free selection: walk indices, keep each with the
        // probability that fills exactly `n` slots (classic sequential
        // sampling), preserving order.
        let mut out = Vec::with_capacity(n);
        let mut needed = n;
        let mut remaining = self.values.len();
        for v in &self.values {
            if needed == 0 {
                break;
            }
            if rng.below(remaining as u64) < needed as u64 {
                out.push(v.clone());
                needed -= 1;
            }
            remaining -= 1;
        }
        out
    }
}
