//! An offline, dependency-free drop-in subset of the `proptest` crate.
//!
//! The workspace's property suites were written against the real
//! `proptest`, but this repository must build and test with **no network
//! or registry access** — and Cargo resolves even optional registry
//! dependencies, so feature-gating the real crate cannot make the
//! dependency disappear. This vendored shim implements exactly the API
//! surface the suites use, with the same names and shapes:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, `prop_recursive` and `boxed`,
//! * [`Just`], [`any`], range strategies, tuple strategies,
//! * [`collection::vec`], [`sample::subsequence`], [`prop_oneof!`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message;
//!   the inputs appear in the message when the test interpolates them.
//! * **Deterministic seeding.** Each test's RNG is seeded from an FNV-1a
//!   hash of its fully-qualified name, so failures reproduce exactly run
//!   to run. Set `PROPTEST_RNG_SEED=<u64>` to explore other streams.
//! * **`.proptest-regressions` files are not read** — pin any recorded
//!   seed as an explicit unit test instead (see
//!   `tests/setop_semantics.rs` for the pattern).

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

pub mod collection;
pub mod sample;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving generation: SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling bound");
        // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
        // irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a 64-bit (self-contained copy so the shim stays dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The RNG for one property test, seeded from its qualified name (or the
/// `PROPTEST_RNG_SEED` environment variable when set).
#[doc(hidden)]
pub fn test_rng(test_name: &str) -> TestRng {
    let seed = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|s| s ^ fnv1a(test_name.as_bytes()))
        .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
    TestRng::seed_from_u64(seed)
}

/// A value generator. The subset of the real `Strategy` the suites use.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// smaller structure and wraps it one level. Unlike the real crate
    /// (which weights by `desired_size`), this shim unrolls `depth`
    /// levels, unioning each level with the previous so all depths from
    /// leaf to `depth` occur.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = BoxedStrategy::new(self);
        for _ in 0..depth {
            let deeper = BoxedStrategy::new(recurse(strat.clone()));
            strat = BoxedStrategy::new(Union::of(vec![strat, deeper]));
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Object-safe generation, so strategies can be type-erased.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted type-erased strategy (cloneable, unlike the real
/// crate's `BoxedStrategy`, which this shim exploits for recursion).
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> BoxedStrategy<T> {
    /// Erase `strategy`.
    pub fn new(strategy: impl Strategy<Value = T> + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::new(strategy))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among type-erased branches ([`prop_oneof!`]).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over pre-erased branches. `branches` must be non-empty.
    pub fn of(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            branches: self.branches.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T` (only `bool` and the primitive
/// integers are supported).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Inclusive-exclusive element-count range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub lo: usize,
    /// Maximum length (exclusive).
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// The test-definition macro. Matches the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, flag in any::<bool>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ( $($strat,)+ );
                for _case in 0..config.cases {
                    let ( $($arg,)+ ) = $crate::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::of(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Assert within a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module path used by the suites
    /// (`prop::collection::vec`, `prop::sample::subsequence`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_test_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3i64..7), &mut rng);
            assert!((3..7).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_rng("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..10, flag in any::<bool>()) {
            prop_assert!(x < 10, "x={} flag={}", x, flag);
        }
    }
}
