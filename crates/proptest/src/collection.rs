//! Collection strategies: the `prop::collection::vec` subset.

use crate::{SizeRange, Strategy, TestRng};

/// Strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
