//! Abstract syntax tree for the paper's SQL subset.
//!
//! The AST mirrors the grammar of paper §2: statements are DDL
//! (`CREATE TABLE`), DML (`INSERT`), or queries; a query is either a single
//! *query specification* ([`QuerySpec`]) or a *query expression* combining
//! two queries with a set operator ([`QueryExpr::SetOp`]).

use uniq_types::{ColRef, ColumnName, DataType, HostVarName, TableName, Value};

/// A complete SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE …`.
    CreateTable(CreateTable),
    /// `CREATE [UNIQUE] INDEX …`.
    CreateIndex(CreateIndex),
    /// `INSERT INTO …`.
    Insert(Insert),
    /// A query (specification or set-operator expression), optionally
    /// aggregated, ordered, and limited.
    Query(Query),
}

/// `CREATE TABLE name (columns…, constraints…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// The table's name.
    pub name: TableName,
    /// Column definitions, in declaration order.
    pub columns: Vec<ColumnDefAst>,
    /// Table constraints (column constraints are folded into these, since
    /// SQL2 table constraints subsume column constraints — paper §2.1).
    pub constraints: Vec<TableConstraintAst>,
}

/// One column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDefAst {
    /// Column name.
    pub name: ColumnName,
    /// Declared scalar type.
    pub data_type: DataType,
    /// `NOT NULL` was specified.
    pub not_null: bool,
}

/// A table constraint inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraintAst {
    /// `PRIMARY KEY (cols)` — implies `NOT NULL` on every named column.
    PrimaryKey(Vec<ColumnName>),
    /// `UNIQUE (cols)` — a candidate key; columns may be nullable, with
    /// SQL2's null-as-special-value semantics (at most one all-equivalent
    /// null-bearing key per table instance; paper §2.1).
    Unique(Vec<ColumnName>),
    /// `CHECK (condition)` — a search condition every row must satisfy
    /// (true-interpreted: a row violates it only when definitely false).
    Check(Expr),
    /// `FOREIGN KEY (cols) REFERENCES parent (parent_cols)` — an inclusion
    /// dependency. Not used by the paper's §2–§5 analyses, but the basis
    /// of the join-elimination rewrite its §7 lists as future work
    /// (King's semantic optimization via referential constraints).
    ForeignKey {
        /// Referencing columns of this table.
        columns: Vec<ColumnName>,
        /// The referenced (parent) table.
        parent: TableName,
        /// The referenced columns — must form a candidate key of the
        /// parent.
        parent_columns: Vec<ColumnName>,
    },
}

/// `CREATE [UNIQUE] INDEX name ON table (cols) [USING HASH | USING BTREE]`.
///
/// A persistent secondary index. `UNIQUE` declares the indexed columns a
/// candidate key of the table (with the paper's §2.1 null-as-special-value
/// semantics), which makes the index a new *source of uniqueness* for
/// Algorithm 1 in addition to a physical access path.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// The index's name (shared namespace across the database).
    pub name: String,
    /// The indexed table.
    pub table: TableName,
    /// Indexed columns, in declaration order (the probe-key prefix order).
    pub columns: Vec<ColumnName>,
    /// `UNIQUE` was specified: at most one row per key value.
    pub unique: bool,
    /// The physical structure backing the index.
    pub kind: IndexKindAst,
}

/// The physical structure of a secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKindAst {
    /// Ordered index (`USING BTREE`, the default): supports point probes
    /// and range scans.
    BTree,
    /// Hash index (`USING HASH`): point probes only.
    Hash,
}

/// `INSERT INTO table [(cols)] VALUES (…), (…)…`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: TableName,
    /// Optional explicit column list; `None` means declaration order.
    pub columns: Option<Vec<ColumnName>>,
    /// Rows of literal values.
    pub rows: Vec<Vec<Value>>,
}

/// A full query: a body (plain SPJ/set-op expression, or an aggregate
/// specification) with optional `ORDER BY` and `LIMIT` output clauses.
///
/// The paper's §2 subset is exactly the `body: Plain, order_by: [],
/// limit: None` corner; everything the rewrite pipeline and the proof
/// checker consume stays a [`QueryExpr`]. Aggregation and ordering are
/// *output operators* layered on top of a block, which is why they live
/// in a wrapper instead of inside [`QuerySpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The producing body.
    pub body: QueryBody,
    /// `ORDER BY` items, outermost sort first. Empty = no ordering.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT k`.
    pub limit: Option<u64>,
}

impl Query {
    /// Wrap a plain query expression (no aggregation/ordering/limit).
    pub fn plain(expr: QueryExpr) -> Query {
        Query {
            body: QueryBody::Plain(expr),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// The bare query expression, when this query is exactly the paper's
    /// subset: a plain body with no `ORDER BY` and no `LIMIT`.
    pub fn as_plain(&self) -> Option<&QueryExpr> {
        match &self.body {
            QueryBody::Plain(e) if self.order_by.is_empty() && self.limit.is_none() => Some(e),
            _ => None,
        }
    }
}

/// The producing body of a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// A plain specification or set-operator expression (paper §2).
    Plain(QueryExpr),
    /// An aggregate specification (`GROUP BY` / aggregate functions).
    Agg(Box<AggSpec>),
}

/// `SELECT items FROM … [WHERE …] [GROUP BY cols]` — a select block whose
/// projection mixes grouping columns and aggregate calls.
///
/// Lowering: the binder projects the grouping columns plus every
/// aggregate argument out of an ordinary `SELECT ALL` block and layers
/// the aggregation on top, so the whole SPJ machinery (rewrites, cost
/// model, all three executors) applies to the input block unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The output items, in `SELECT`-list order.
    pub items: Vec<AggItem>,
    /// `FROM` items (Cartesian product of the named tables).
    pub from: Vec<TableRef>,
    /// Optional `WHERE` search condition (applied before grouping).
    pub where_clause: Option<Expr>,
    /// `GROUP BY` columns. Empty = one global group (even for an empty
    /// input: `COUNT` is then 0 and every other aggregate `NULL`).
    pub group_by: Vec<ColRef>,
}

/// One item of an aggregate projection list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// A grouping column or an aggregate call.
    pub kind: AggItemKind,
    /// Optional `AS alias`.
    pub alias: Option<ColumnName>,
}

/// The two kinds of aggregate-projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum AggItemKind {
    /// A grouping column (must appear in `GROUP BY`).
    Group(ColRef),
    /// An aggregate function call.
    Agg(AggCall),
}

/// An aggregate function call: `COUNT(*)`, `COUNT(DISTINCT e)`,
/// `SUM(e)`, `MIN(e)`, `MAX(e)`, `AVG(e)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// `DISTINCT` inside the call (`COUNT(DISTINCT e)`). The
    /// uniqueness-powered elision rewrites this to `false` when the
    /// argument is proven duplicate-free per group.
    pub distinct: bool,
    /// The argument column; `None` is `COUNT(*)`.
    pub arg: Option<ColRef>,
}

/// The aggregate functions of the extended surface. All of them ignore
/// `NULL` arguments (`COUNT(*)` counts rows); `AVG` over `INTEGER` is
/// the truncating integer mean, consistent across every executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(e)` / `COUNT(*)`.
    Count,
    /// `SUM(e)` (integer argument).
    Sum,
    /// `MIN(e)`.
    Min,
    /// `MAX(e)`.
    Max,
    /// `AVG(e)` (integer argument, truncating).
    Avg,
}

impl AggFunc {
    /// Canonical keyword spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One `ORDER BY` item: an output column reference plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The referenced column: an output column name/alias, optionally
    /// qualified to disambiguate (`S.SNO`).
    pub col: ColRef,
    /// `DESC` (the default is `ASC`).
    pub desc: bool,
}

/// A query: one specification, or two queries joined by a set operator.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A plain `SELECT … FROM … WHERE …` block.
    Spec(Box<QuerySpec>),
    /// `left <op> [ALL] right`.
    SetOp {
        /// Which set operator.
        op: SetOp,
        /// `ALL` (multiset) vs. distinct semantics.
        all: bool,
        /// Left operand.
        left: Box<QueryExpr>,
        /// Right operand.
        right: Box<QueryExpr>,
    },
}

impl QueryExpr {
    /// Convenience constructor wrapping a specification.
    pub fn spec(spec: QuerySpec) -> QueryExpr {
        QueryExpr::Spec(Box::new(spec))
    }

    /// The specification, if this query is a single `SELECT` block.
    pub fn as_spec(&self) -> Option<&QuerySpec> {
        match self {
            QueryExpr::Spec(s) => Some(s),
            QueryExpr::SetOp { .. } => None,
        }
    }
}

/// The set operators of the paper's query expressions (§2.2), plus `UNION`
/// which the engine supports as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOp {
    /// `INTERSECT` — `R ∩ S`.
    Intersect,
    /// `EXCEPT` — `R − S`.
    Except,
    /// `UNION` (extension; not part of the paper's considered class).
    Union,
}

/// `ALL` vs. `DISTINCT` in a `SELECT` clause — the paper's `π_All`/`π_Dist`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distinct {
    /// Retain duplicates (`SELECT ALL`, the default).
    All,
    /// Eliminate duplicates (`SELECT DISTINCT`).
    Distinct,
}

/// A `SELECT` block: projection over a selection over an extended
/// Cartesian product.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// `ALL` or `DISTINCT`.
    pub distinct: Distinct,
    /// The projection list.
    pub projection: Projection,
    /// `FROM` items (Cartesian product of the named tables).
    pub from: Vec<TableRef>,
    /// Optional `WHERE` search condition.
    pub where_clause: Option<Expr>,
}

/// The projection list of a `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    Star,
    /// An explicit list of column references.
    Columns(Vec<SelectItem>),
}

/// One item of an explicit projection list. The paper's subset has no
/// arithmetic, so items are always column references (optionally aliased).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The referenced column.
    pub col: ColRef,
    /// Optional `AS alias`.
    pub alias: Option<ColumnName>,
}

impl SelectItem {
    /// A plain, unaliased column reference.
    pub fn col(c: ColRef) -> SelectItem {
        SelectItem {
            col: c,
            alias: None,
        }
    }
}

/// One `FROM`-clause item: a base table with an optional correlation name.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// The base table.
    pub table: TableName,
    /// Optional correlation name (`SUPPLIER S`).
    pub alias: Option<TableName>,
}

impl TableRef {
    /// The name this table is referred to by in the query: the alias when
    /// present, the table name otherwise.
    pub fn binding_name(&self) -> &TableName {
        self.alias.as_ref().unwrap_or(&self.table)
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a op b` ≡ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The operator's logical negation (`NOT (a op b)` ≡ `a op.negate() b`).
    ///
    /// Sound under three-valued logic: when either operand is `NULL` both
    /// sides are *unknown* (and `NOT unknown = unknown`); otherwise it is
    /// ordinary two-valued negation. Property-tested in
    /// `tests/norm_properties.rs`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A scalar operand of a predicate: the paper's subset compares columns,
/// literal constants and host variables only.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A column reference.
    Column(ColRef),
    /// A literal value.
    Literal(Value),
    /// A host variable whose value is supplied at execution time.
    HostVar(HostVarName),
}

impl Scalar {
    /// The column reference, if this scalar is one.
    pub fn as_column(&self) -> Option<&ColRef> {
        match self {
            Scalar::Column(c) => Some(c),
            _ => None,
        }
    }

    /// True iff this scalar's value is fixed for the whole execution
    /// (a literal or a host variable) — the paper's "constant" for Type-1
    /// equality conditions.
    pub fn is_constant(&self) -> bool {
        !matches!(self, Scalar::Column(_))
    }
}

/// A search condition (predicate expression).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `left op right` over scalars.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        left: Scalar,
        /// Right operand.
        right: Scalar,
    },
    /// `scalar [NOT] BETWEEN low AND high`.
    Between {
        /// Tested scalar.
        scalar: Scalar,
        /// Lower bound (inclusive).
        low: Scalar,
        /// Upper bound (inclusive).
        high: Scalar,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `scalar [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested scalar.
        scalar: Scalar,
        /// The list elements.
        list: Vec<Scalar>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `scalar IS [NOT] NULL`.
    IsNull {
        /// Tested scalar.
        scalar: Scalar,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// `NOT EXISTS`.
        negated: bool,
        /// The (possibly correlated) subquery.
        subquery: Box<QuerySpec>,
    },
    /// `scalar [NOT] IN (subquery)` — sugar for a correlated `EXISTS`.
    InSubquery {
        /// Tested scalar.
        scalar: Scalar,
        /// The subquery; must project a single column.
        subquery: Box<QuerySpec>,
        /// `NOT IN`.
        negated: bool,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// `a AND b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// `a OR b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// `NOT a`.
    #[allow(clippy::should_implement_trait)] // associated constructor, not a method
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }

    /// `left = right` over two columns.
    pub fn col_eq_col(l: ColRef, r: ColRef) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            left: Scalar::Column(l),
            right: Scalar::Column(r),
        }
    }

    /// `col = literal`.
    pub fn col_eq_val(c: ColRef, v: Value) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            left: Scalar::Column(c),
            right: Scalar::Literal(v),
        }
    }

    /// Conjoin all expressions; `None` when the iterator is empty.
    pub fn conjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    /// Visit every subquery (EXISTS / IN) contained in this expression.
    pub fn visit_subqueries<'a>(&'a self, f: &mut impl FnMut(&'a QuerySpec)) {
        match self {
            Expr::Exists { subquery, .. } | Expr::InSubquery { subquery, .. } => f(subquery),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit_subqueries(f);
                b.visit_subqueries(f);
            }
            Expr::Not(a) => a.visit_subqueries(f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_flip_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef {
            table: "SUPPLIER".into(),
            alias: Some("S".into()),
        };
        assert_eq!(t.binding_name().as_str(), "S");
        let t = TableRef {
            table: "SUPPLIER".into(),
            alias: None,
        };
        assert_eq!(t.binding_name().as_str(), "SUPPLIER");
    }

    #[test]
    fn conjoin_builds_left_deep_and() {
        let e = Expr::conjoin(vec![
            Expr::IsNull {
                scalar: Scalar::Column(ColRef::bare("A")),
                negated: false,
            },
            Expr::IsNull {
                scalar: Scalar::Column(ColRef::bare("B")),
                negated: false,
            },
        ])
        .unwrap();
        assert!(matches!(e, Expr::And(_, _)));
        assert!(Expr::conjoin(vec![]).is_none());
    }

    #[test]
    fn scalar_constantness() {
        assert!(Scalar::Literal(Value::Int(1)).is_constant());
        assert!(Scalar::HostVar("H".into()).is_constant());
        assert!(!Scalar::Column(ColRef::bare("C")).is_constant());
    }
}
