//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (paper §2):
//!
//! ```text
//! statement   := create_table | create_index | insert | full_query
//! create_index:= CREATE [UNIQUE] INDEX name ON table '(' column (',' column)* ')'
//!                [USING (HASH | BTREE)]
//! full_query  := (query | agg_spec) [ORDER BY order_item (',' order_item)*]
//!                [LIMIT k]
//! agg_spec    := SELECT agg_item (',' agg_item)* FROM table_ref (',' table_ref)*
//!                [WHERE condition] [GROUP BY col_ref (',' col_ref)*]
//! agg_item    := (col_ref | agg_call) [AS alias]
//! agg_call    := COUNT '(' '*' ')' | COUNT '(' [DISTINCT] col_ref ')'
//!              | (SUM|MIN|MAX|AVG) '(' col_ref ')'
//! order_item  := col_ref [ASC | DESC]
//! query       := spec (set_op [ALL] spec)*        -- left associative
//! spec        := SELECT [ALL|DISTINCT] projection FROM table_ref (',' table_ref)*
//!                [WHERE condition]
//!              | '(' query_spec ')'
//! condition   := or_term
//! or_term     := and_term (OR and_term)*
//! and_term    := not_term (AND not_term)*
//! not_term    := NOT not_term | predicate
//! predicate   := EXISTS '(' spec ')'
//!              | '(' condition ')'
//!              | scalar (comparison | between | in | is_null)
//! ```
//!
//! Set-operator note: the SQL2 standard gives `INTERSECT` higher precedence
//! than `UNION`/`EXCEPT`; since the paper's query expressions combine
//! exactly two specifications we parse all set operators at one level,
//! left-associatively, and parenthesized queries can express any nesting.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use uniq_types::{ColRef, DataType, Error, Result, Value};

/// Parse a single statement (DDL, DML or query).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut p = Parser::new(input)?;
    let s = p.statement()?;
    p.expect_end()?;
    Ok(s)
}

/// Parse a semicolon-separated script of statements.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at(&TokenKind::Eof) {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.at(&TokenKind::Semicolon) && !p.at(&TokenKind::Eof) {
            return Err(p.unexpected("';' or end of input"));
        }
    }
}

/// Parse a query (specification or set-operator expression).
///
/// This is the paper's §2 subset entry point: aggregates, `GROUP BY`,
/// `ORDER BY` and `LIMIT` are rejected here — callers that accept the full
/// surface use [`parse_full_query`].
pub fn parse_query(input: &str) -> Result<QueryExpr> {
    let mut p = Parser::new(input)?;
    let q = p.full_query()?;
    p.expect_end()?;
    match q {
        Query {
            body: QueryBody::Plain(e),
            order_by,
            limit,
        } if order_by.is_empty() && limit.is_none() => Ok(e),
        _ => Err(Error::Parse {
            pos: 0,
            message: "aggregates, GROUP BY, ORDER BY and LIMIT are not allowed here \
                      (use the full-query entry point)"
                .into(),
        }),
    }
}

/// Parse a full query: plain or aggregate body plus optional `ORDER BY` /
/// `LIMIT` clauses.
pub fn parse_full_query(input: &str) -> Result<Query> {
    let mut p = Parser::new(input)?;
    let q = p.full_query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parse a bare search condition (used by tests and by `CHECK` handling).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.condition()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(input)?,
            i: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.i + 1).min(self.tokens.len() - 1)].kind
    }

    fn pos(&self) -> usize {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.i].kind.clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        k
    }

    fn at(&self, k: &TokenKind) -> bool {
        self.peek() == k
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.at(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: &TokenKind, what: &str) -> Result<()> {
        if self.eat(k) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw))
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        while self.eat(&TokenKind::Semicolon) {}
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, expected: &str) -> Error {
        Error::Parse {
            pos: self.pos(),
            message: format!("expected {expected}, found {:?}", self.peek()),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            // Allow keywords like KEY to be used as identifiers only where
            // harmless? Keep it strict: identifiers must not be keywords.
            _ => Err(self.unexpected(what)),
        }
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("CREATE") {
            match self.peek2() {
                TokenKind::Keyword("UNIQUE") | TokenKind::Keyword("INDEX") => {
                    Ok(Statement::CreateIndex(self.create_index()?))
                }
                _ => Ok(Statement::CreateTable(self.create_table()?)),
            }
        } else if self.at_kw("INSERT") {
            Ok(Statement::Insert(self.insert()?))
        } else {
            Ok(Statement::Query(self.full_query()?))
        }
    }

    fn create_index(&mut self) -> Result<CreateIndex> {
        self.expect_kw("CREATE")?;
        let unique = self.eat_kw("UNIQUE");
        self.expect_kw("INDEX")?;
        let name = self.ident("index name")?;
        self.expect_kw("ON")?;
        let table = self.ident("table name")?.into();
        let columns = self.column_name_list()?;
        let kind = if self.eat_kw("USING") {
            if self.eat_kw("HASH") {
                IndexKindAst::Hash
            } else if self.eat_kw("BTREE") {
                IndexKindAst::BTree
            } else {
                return Err(self.unexpected("HASH or BTREE"));
            }
        } else {
            IndexKindAst::BTree
        };
        Ok(CreateIndex {
            name,
            table,
            columns,
            unique,
            kind,
        })
    }

    fn create_table(&mut self) -> Result<CreateTable> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let name = self.ident("table name")?.into();
        self.expect(&TokenKind::LParen, "'('")?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.at_kw("PRIMARY") {
                self.bump();
                self.expect_kw("KEY")?;
                constraints.push(TableConstraintAst::PrimaryKey(self.column_name_list()?));
            } else if self.at_kw("UNIQUE") {
                self.bump();
                constraints.push(TableConstraintAst::Unique(self.column_name_list()?));
            } else if self.at_kw("CHECK") {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.condition()?;
                self.expect(&TokenKind::RParen, "')'")?;
                constraints.push(TableConstraintAst::Check(cond));
            } else if self.at_kw("FOREIGN") {
                self.bump();
                self.expect_kw("KEY")?;
                let columns = self.column_name_list()?;
                self.expect_kw("REFERENCES")?;
                let parent = self.ident("referenced table")?.into();
                let parent_columns = self.column_name_list()?;
                constraints.push(TableConstraintAst::ForeignKey {
                    columns,
                    parent,
                    parent_columns,
                });
            } else if self.at_kw("CONSTRAINT") {
                // `CONSTRAINT name <constraint>` — name accepted and ignored.
                self.bump();
                self.ident("constraint name")?;
                continue;
            } else {
                // A column definition.
                let col_name = self.ident("column name")?;
                let data_type = self.data_type()?;
                let mut not_null = false;
                let mut col_constraints: Vec<TableConstraintAst> = Vec::new();
                loop {
                    if self.at_kw("NOT") && matches!(self.peek2(), TokenKind::Keyword("NULL")) {
                        self.bump();
                        self.bump();
                        not_null = true;
                    } else if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        col_constraints.push(TableConstraintAst::PrimaryKey(vec![col_name
                            .clone()
                            .into()]));
                    } else if self.eat_kw("UNIQUE") {
                        col_constraints
                            .push(TableConstraintAst::Unique(vec![col_name.clone().into()]));
                    } else if self.at_kw("CHECK") {
                        self.bump();
                        self.expect(&TokenKind::LParen, "'('")?;
                        let cond = self.condition()?;
                        self.expect(&TokenKind::RParen, "')'")?;
                        col_constraints.push(TableConstraintAst::Check(cond));
                    } else if self.eat_kw("REFERENCES") {
                        let parent = self.ident("referenced table")?.into();
                        let parent_columns = self.column_name_list()?;
                        col_constraints.push(TableConstraintAst::ForeignKey {
                            columns: vec![col_name.clone().into()],
                            parent,
                            parent_columns,
                        });
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDefAst {
                    name: col_name.into(),
                    data_type,
                    not_null,
                });
                constraints.extend(col_constraints);
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        if self.eat_kw("INTEGER") || self.eat_kw("INT") {
            Ok(DataType::Int)
        } else if self.eat_kw("VARCHAR") || self.eat_kw("CHAR") {
            // Optional length, accepted and ignored (all strings are
            // variable length in this engine).
            if self.eat(&TokenKind::LParen) {
                match self.bump() {
                    TokenKind::Int(_) => {}
                    _ => return Err(self.unexpected("length")),
                }
                self.expect(&TokenKind::RParen, "')'")?;
            }
            Ok(DataType::Str)
        } else {
            Err(self.unexpected("data type (INTEGER or VARCHAR)"))
        }
    }

    fn column_name_list(&mut self) -> Result<Vec<uniq_types::ColumnName>> {
        self.expect(&TokenKind::LParen, "'('")?;
        let mut cols = Vec::new();
        loop {
            cols.push(self.ident("column name")?.into());
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(cols)
    }

    fn insert(&mut self) -> Result<Insert> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident("table name")?.into();
        let columns = if self.at(&TokenKind::LParen) {
            Some(self.column_name_list()?)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Insert {
            table,
            columns,
            rows,
        })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.bump() {
            TokenKind::Int(v) => Ok(Value::Int(v)),
            TokenKind::Str(s) => Ok(Value::Str(s)),
            TokenKind::Keyword("NULL") => Ok(Value::Null),
            TokenKind::Keyword("TRUE") => Ok(Value::Bool(true)),
            TokenKind::Keyword("FALSE") => Ok(Value::Bool(false)),
            _ => {
                self.i = self.i.saturating_sub(1);
                Err(self.unexpected("literal value"))
            }
        }
    }

    // ---- queries ---------------------------------------------------------

    /// Full query: a plain or aggregate body plus ORDER BY / LIMIT tail.
    fn full_query(&mut self) -> Result<Query> {
        let body = self.query_body()?;
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let mut items = vec![self.order_item()?];
            while self.eat(&TokenKind::Comma) {
                items.push(self.order_item()?);
            }
            items
        } else {
            Vec::new()
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                TokenKind::Int(v) if v >= 0 => Some(v as u64),
                _ => {
                    self.i = self.i.saturating_sub(1);
                    return Err(self.unexpected("non-negative LIMIT count"));
                }
            }
        } else {
            None
        };
        Ok(Query {
            body,
            order_by,
            limit,
        })
    }

    fn order_item(&mut self) -> Result<OrderItem> {
        let col = self.col_ref()?;
        let desc = if self.eat_kw("DESC") {
            true
        } else {
            self.eat_kw("ASC");
            false
        };
        Ok(OrderItem { col, desc })
    }

    fn query_body(&mut self) -> Result<QueryBody> {
        // A parenthesized head can only start a plain set-op expression.
        if self.at(&TokenKind::LParen) {
            return Ok(QueryBody::Plain(self.query()?));
        }
        if self.select_list_has_aggregate() {
            return Ok(QueryBody::Agg(Box::new(self.agg_spec()?)));
        }
        let save = self.i;
        let first = self.query_spec()?;
        if self.at_kw("GROUP") {
            // `SELECT g FROM t ... GROUP BY g` with no aggregate calls:
            // re-parse the block through the aggregate grammar.
            self.i = save;
            return Ok(QueryBody::Agg(Box::new(self.agg_spec()?)));
        }
        Ok(QueryBody::Plain(self.query_rest(QueryExpr::spec(first))?))
    }

    /// Token-level lookahead: does the SELECT list ahead of FROM contain an
    /// aggregate function call? (Select lists contain no other parentheses,
    /// so scanning to FROM is exact.)
    fn select_list_has_aggregate(&self) -> bool {
        let mut j = self.i;
        loop {
            match &self.tokens[j].kind {
                TokenKind::Keyword("FROM") | TokenKind::Eof => return false,
                TokenKind::Keyword("COUNT" | "SUM" | "MIN" | "MAX" | "AVG") => return true,
                _ => j += 1,
            }
        }
    }

    fn agg_spec(&mut self) -> Result<AggSpec> {
        self.expect_kw("SELECT")?;
        if self.at_kw("DISTINCT") {
            return Err(Error::Parse {
                pos: self.pos(),
                message: "SELECT DISTINCT cannot be combined with aggregates or GROUP BY".into(),
            });
        }
        self.eat_kw("ALL");
        if self.at(&TokenKind::Star) {
            return Err(Error::Parse {
                pos: self.pos(),
                message: "SELECT * cannot be combined with aggregates or GROUP BY".into(),
            });
        }
        let mut items = Vec::new();
        loop {
            let kind = if let Some(func) = self.agg_func_at() {
                AggItemKind::Agg(self.agg_call(func)?)
            } else {
                AggItemKind::Group(self.col_ref()?)
            };
            let alias = if self.eat_kw("AS") {
                Some(self.ident("alias")?.into())
            } else {
                None
            };
            items.push(AggItem { kind, alias });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_refs()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.condition()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            let mut cols = vec![self.col_ref()?];
            while self.eat(&TokenKind::Comma) {
                cols.push(self.col_ref()?);
            }
            cols
        } else {
            Vec::new()
        };
        Ok(AggSpec {
            items,
            from,
            where_clause,
            group_by,
        })
    }

    fn agg_func_at(&self) -> Option<AggFunc> {
        let func = match self.peek() {
            TokenKind::Keyword("COUNT") => AggFunc::Count,
            TokenKind::Keyword("SUM") => AggFunc::Sum,
            TokenKind::Keyword("MIN") => AggFunc::Min,
            TokenKind::Keyword("MAX") => AggFunc::Max,
            TokenKind::Keyword("AVG") => AggFunc::Avg,
            _ => return None,
        };
        matches!(self.peek2(), TokenKind::LParen).then_some(func)
    }

    fn agg_call(&mut self, func: AggFunc) -> Result<AggCall> {
        self.bump(); // the function keyword
        self.expect(&TokenKind::LParen, "'('")?;
        if self.eat(&TokenKind::Star) {
            if func != AggFunc::Count {
                return Err(Error::Parse {
                    pos: self.pos(),
                    message: format!("{}(*) is not supported; only COUNT(*)", func.name()),
                });
            }
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(AggCall {
                func,
                distinct: false,
                arg: None,
            });
        }
        let distinct = self.eat_kw("DISTINCT");
        if distinct && func != AggFunc::Count {
            return Err(Error::Parse {
                pos: self.pos(),
                message: format!("DISTINCT inside {} is not supported", func.name()),
            });
        }
        let arg = self.col_ref()?;
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(AggCall {
            func,
            distinct,
            arg: Some(arg),
        })
    }

    fn query(&mut self) -> Result<QueryExpr> {
        let left = self.query_primary()?;
        self.query_rest(left)
    }

    fn query_rest(&mut self, mut left: QueryExpr) -> Result<QueryExpr> {
        loop {
            let op = if self.at_kw("INTERSECT") {
                SetOp::Intersect
            } else if self.at_kw("EXCEPT") {
                SetOp::Except
            } else if self.at_kw("UNION") {
                SetOp::Union
            } else {
                break;
            };
            self.bump();
            let all = self.eat_kw("ALL");
            let right = self.query_primary()?;
            left = QueryExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn query_primary(&mut self) -> Result<QueryExpr> {
        if self.at(&TokenKind::LParen) {
            self.bump();
            let q = self.query()?;
            self.expect(&TokenKind::RParen, "')'")?;
            Ok(q)
        } else {
            Ok(QueryExpr::spec(self.query_spec()?))
        }
    }

    fn query_spec(&mut self) -> Result<QuerySpec> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            Distinct::Distinct
        } else {
            self.eat_kw("ALL");
            Distinct::All
        };
        let projection = if self.eat(&TokenKind::Star) {
            Projection::Star
        } else {
            let mut items = Vec::new();
            loop {
                let col = self.col_ref()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident("alias")?.into())
                } else {
                    None
                };
                items.push(SelectItem { col, alias });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            Projection::Columns(items)
        };
        self.expect_kw("FROM")?;
        let from = self.table_refs()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.condition()?)
        } else {
            None
        };
        Ok(QuerySpec {
            distinct,
            projection,
            from,
            where_clause,
        })
    }

    fn table_refs(&mut self) -> Result<Vec<TableRef>> {
        let mut from = Vec::new();
        loop {
            let table = self.ident("table name")?.into();
            let alias = match self.peek() {
                TokenKind::Ident(_) => Some(self.ident("alias")?.into()),
                _ => {
                    if self.eat_kw("AS") {
                        Some(self.ident("alias")?.into())
                    } else {
                        None
                    }
                }
            };
            from.push(TableRef { table, alias });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(from)
    }

    fn col_ref(&mut self) -> Result<ColRef> {
        let first = self.ident("column reference")?;
        if self.eat(&TokenKind::Dot) {
            if self.eat(&TokenKind::Star) {
                // `T.*` is not in the subset's projection grammar.
                return Err(self.unexpected("column name (T.* is not supported)"));
            }
            let col = self.ident("column name")?;
            Ok(ColRef::qualified(first, col))
        } else {
            Ok(ColRef::bare(first))
        }
    }

    // ---- conditions -------------------------------------------------------

    pub(crate) fn condition(&mut self) -> Result<Expr> {
        self.or_term()
    }

    fn or_term(&mut self) -> Result<Expr> {
        let mut left = self.and_term()?;
        while self.eat_kw("OR") {
            let right = self.and_term()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn and_term(&mut self) -> Result<Expr> {
        let mut left = self.not_term()?;
        while self.eat_kw("AND") {
            let right = self.not_term()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn not_term(&mut self) -> Result<Expr> {
        if self.at_kw("NOT") && !matches!(self.peek2(), TokenKind::Keyword("EXISTS")) {
            self.bump();
            return Ok(Expr::not(self.not_term()?));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr> {
        // [NOT] EXISTS (subquery)
        if self.at_kw("EXISTS")
            || (self.at_kw("NOT") && matches!(self.peek2(), TokenKind::Keyword("EXISTS")))
        {
            let negated = self.eat_kw("NOT");
            self.expect_kw("EXISTS")?;
            self.expect(&TokenKind::LParen, "'('")?;
            let sub = self.query_spec()?;
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(Expr::Exists {
                negated,
                subquery: Box::new(sub),
            });
        }
        // Parenthesized condition — but '(' could also start nothing else
        // here since scalars never start with '(' in this subset.
        if self.at(&TokenKind::LParen) {
            self.bump();
            let inner = self.condition()?;
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(inner);
        }
        let scalar = self.scalar()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { scalar, negated });
        }
        // [NOT] BETWEEN / [NOT] IN
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            let low = self.scalar()?;
            self.expect_kw("AND")?;
            let high = self.scalar()?;
            return Ok(Expr::Between {
                scalar,
                low,
                high,
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen, "'('")?;
            if self.at_kw("SELECT") {
                let sub = self.query_spec()?;
                self.expect(&TokenKind::RParen, "')'")?;
                return Ok(Expr::InSubquery {
                    scalar,
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.scalar()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(Expr::InList {
                scalar,
                list,
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("BETWEEN or IN after NOT"));
        }
        // Comparison.
        let op = match self.bump() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => {
                self.i = self.i.saturating_sub(1);
                return Err(self.unexpected("comparison operator"));
            }
        };
        let right = self.scalar()?;
        Ok(Expr::Cmp {
            op,
            left: scalar,
            right,
        })
    }

    fn scalar(&mut self) -> Result<Scalar> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Scalar::Literal(Value::Int(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Scalar::Literal(Value::Str(s)))
            }
            TokenKind::Keyword("NULL") => {
                self.bump();
                Ok(Scalar::Literal(Value::Null))
            }
            TokenKind::Keyword("TRUE") => {
                self.bump();
                Ok(Scalar::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword("FALSE") => {
                self.bump();
                Ok(Scalar::Literal(Value::Bool(false)))
            }
            TokenKind::HostVar(h) => {
                self.bump();
                Ok(Scalar::HostVar(h.into()))
            }
            TokenKind::Ident(_) => Ok(Scalar::Column(self.col_ref()?)),
            _ => Err(self.unexpected("scalar (column, literal or :hostvar)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_1() {
        // Paper Example 1.
        let q = parse_query(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME \
             FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        )
        .unwrap();
        let spec = q.as_spec().unwrap();
        assert_eq!(spec.distinct, Distinct::Distinct);
        assert_eq!(spec.from.len(), 2);
        match &spec.projection {
            Projection::Columns(items) => assert_eq!(items.len(), 3),
            Projection::Star => panic!("expected explicit projection"),
        }
        assert!(spec.where_clause.is_some());
    }

    #[test]
    fn parses_create_index() {
        let s = parse_statement("create unique index IDX_OEM on PARTS (OEM-PNO)").unwrap();
        match s {
            Statement::CreateIndex(ci) => {
                assert_eq!(ci.name, "IDX_OEM");
                assert_eq!(ci.table, "PARTS".into());
                assert_eq!(ci.columns, vec!["OEM-PNO".into()]);
                assert!(ci.unique);
                assert_eq!(ci.kind, IndexKindAst::BTree);
            }
            other => panic!("expected CREATE INDEX, got {other:?}"),
        }
        let s = parse_statement("CREATE INDEX I ON T (A, B) USING HASH").unwrap();
        match s {
            Statement::CreateIndex(ci) => {
                assert!(!ci.unique);
                assert_eq!(ci.columns.len(), 2);
                assert_eq!(ci.kind, IndexKindAst::Hash);
            }
            other => panic!("expected CREATE INDEX, got {other:?}"),
        }
        // CREATE TABLE still dispatches through the same keyword.
        assert!(matches!(
            parse_statement("CREATE TABLE T (A INTEGER)").unwrap(),
            Statement::CreateTable(_)
        ));
        // Malformed shapes fail cleanly.
        assert!(parse_statement("CREATE INDEX I ON T (A) USING ROPE").is_err());
        assert!(parse_statement("CREATE UNIQUE INDEX I T (A)").is_err());
    }

    #[test]
    fn parses_host_variables() {
        // Paper Example 3.
        let q = parse_query(
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME \
             FROM SUPPLIER S, PARTS P \
             WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
        )
        .unwrap();
        let spec = q.as_spec().unwrap();
        let w = spec.where_clause.as_ref().unwrap();
        let mut saw_hostvar = false;
        fn walk(e: &Expr, saw: &mut bool) {
            match e {
                Expr::Cmp { right, .. } => {
                    if matches!(right, Scalar::HostVar(_)) {
                        *saw = true;
                    }
                }
                Expr::And(a, b) | Expr::Or(a, b) => {
                    walk(a, saw);
                    walk(b, saw);
                }
                _ => {}
            }
        }
        walk(w, &mut saw_hostvar);
        assert!(saw_hostvar);
    }

    #[test]
    fn parses_exists_subquery() {
        // Paper Example 7.
        let q = parse_query(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
             WHERE S.SNAME = :SUPPLIER-NAME AND EXISTS \
             (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)",
        )
        .unwrap();
        let spec = q.as_spec().unwrap();
        let mut n = 0;
        spec.where_clause
            .as_ref()
            .unwrap()
            .visit_subqueries(&mut |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn parses_intersect() {
        // Paper Example 9.
        let q = parse_query(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT \
             SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
        )
        .unwrap();
        match q {
            QueryExpr::SetOp { op, all, .. } => {
                assert_eq!(op, SetOp::Intersect);
                assert!(!all);
            }
            _ => panic!("expected set operation"),
        }
    }

    #[test]
    fn parses_intersect_all_and_except_all() {
        for (text, op) in [
            ("INTERSECT ALL", SetOp::Intersect),
            ("EXCEPT ALL", SetOp::Except),
            ("UNION ALL", SetOp::Union),
        ] {
            let q = parse_query(&format!(
                "SELECT ALL SNO FROM SUPPLIER {text} SELECT ALL SNO FROM AGENTS"
            ))
            .unwrap();
            match q {
                QueryExpr::SetOp { op: got, all, .. } => {
                    assert_eq!(got, op);
                    assert!(all);
                }
                _ => panic!("expected set operation"),
            }
        }
    }

    #[test]
    fn parses_create_table_with_constraints() {
        // Figure 1 / §2.1 SUPPLIER definition.
        let s = parse_statement(
            "CREATE TABLE SUPPLIER ( \
               SNO INTEGER NOT NULL, SNAME VARCHAR(20), SCITY VARCHAR(20), \
               BUDGET INTEGER, STATUS VARCHAR(10), \
               PRIMARY KEY (SNO), \
               CHECK (SNO BETWEEN 1 AND 499), \
               CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')), \
               CHECK (BUDGET <> 0 OR STATUS = 'Inactive'))",
        )
        .unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name.as_str(), "SUPPLIER");
                assert_eq!(ct.columns.len(), 5);
                assert_eq!(ct.constraints.len(), 4);
            }
            _ => panic!("expected CREATE TABLE"),
        }
    }

    #[test]
    fn parses_column_level_constraints() {
        let s = parse_statement(
            "CREATE TABLE T (A INTEGER PRIMARY KEY, B VARCHAR UNIQUE, \
             C INTEGER CHECK (C > 0))",
        )
        .unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.constraints.len(), 3);
                assert!(matches!(
                    ct.constraints[0],
                    TableConstraintAst::PrimaryKey(_)
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_insert() {
        let s = parse_statement("INSERT INTO SUPPLIER (SNO, SNAME) VALUES (1, 'Acme'), (2, NULL)")
            .unwrap();
        match s {
            Statement::Insert(ins) => {
                assert_eq!(ins.rows.len(), 2);
                assert_eq!(ins.rows[1][1], Value::Null);
            }
            _ => panic!("expected INSERT"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let e = parse_expr("A = 1 OR B = 2 AND C = 3").unwrap();
        match e {
            Expr::Or(_, rhs) => assert!(matches!(*rhs, Expr::And(_, _))),
            _ => panic!("expected OR at top"),
        }
    }

    #[test]
    fn not_exists_parses() {
        let e = parse_expr("NOT EXISTS (SELECT * FROM PARTS P WHERE P.SNO = 1)").unwrap();
        assert!(matches!(e, Expr::Exists { negated: true, .. }));
    }

    #[test]
    fn in_subquery_parses() {
        let e = parse_expr("SNO IN (SELECT SNO FROM PARTS)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: false, .. }));
    }

    #[test]
    fn is_not_null_parses() {
        assert!(matches!(
            parse_expr("X IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("X IS NULL").unwrap(),
            Expr::IsNull { negated: false, .. }
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("SELECT * FROM T extra garbage ,").is_err());
    }

    #[test]
    fn multi_statement_script() {
        let ss = parse_statements(
            "CREATE TABLE T (A INTEGER); INSERT INTO T VALUES (1); SELECT * FROM T;",
        )
        .unwrap();
        assert_eq!(ss.len(), 3);
    }

    #[test]
    fn parses_group_by_aggregates() {
        let q = parse_full_query(
            "SELECT S.SCITY, COUNT(*), SUM(S.BUDGET) AS TOTAL \
             FROM SUPPLIER S WHERE S.STATUS = 'Active' GROUP BY S.SCITY",
        )
        .unwrap();
        let QueryBody::Agg(agg) = &q.body else {
            panic!("expected aggregate body");
        };
        assert_eq!(agg.items.len(), 3);
        assert!(matches!(agg.items[0].kind, AggItemKind::Group(_)));
        match &agg.items[1].kind {
            AggItemKind::Agg(c) => {
                assert_eq!(c.func, AggFunc::Count);
                assert!(c.arg.is_none());
            }
            other => panic!("expected COUNT(*), got {other:?}"),
        }
        match &agg.items[2].kind {
            AggItemKind::Agg(c) => {
                assert_eq!(c.func, AggFunc::Sum);
                assert!(c.arg.is_some());
            }
            other => panic!("expected SUM, got {other:?}"),
        }
        assert_eq!(agg.items[2].alias, Some("TOTAL".into()));
        assert_eq!(agg.group_by.len(), 1);
        assert!(agg.where_clause.is_some());
        assert!(q.order_by.is_empty());
        assert_eq!(q.limit, None);
    }

    #[test]
    fn parses_count_distinct() {
        let q = parse_full_query("SELECT COUNT(DISTINCT P.SNO) FROM PARTS P").unwrap();
        let QueryBody::Agg(agg) = &q.body else {
            panic!("expected aggregate body");
        };
        match &agg.items[0].kind {
            AggItemKind::Agg(c) => {
                assert_eq!(c.func, AggFunc::Count);
                assert!(c.distinct);
            }
            other => panic!("expected COUNT(DISTINCT ..), got {other:?}"),
        }
        // Global aggregate: empty group set.
        assert!(agg.group_by.is_empty());
    }

    #[test]
    fn group_by_without_aggregate_calls_is_an_aggregate_body() {
        let q = parse_full_query("SELECT S.SCITY FROM SUPPLIER S GROUP BY S.SCITY").unwrap();
        let QueryBody::Agg(agg) = &q.body else {
            panic!("expected aggregate body");
        };
        assert!(matches!(agg.items[0].kind, AggItemKind::Group(_)));
        assert_eq!(agg.group_by, vec![ColRef::qualified("S", "SCITY")]);
    }

    #[test]
    fn parses_order_by_limit() {
        let q = parse_full_query(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S ORDER BY S.SNO, S.SNAME DESC LIMIT 10",
        )
        .unwrap();
        assert!(matches!(q.body, QueryBody::Plain(_)));
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].desc);
        assert!(q.order_by[1].desc);
        assert_eq!(q.limit, Some(10));
        // ASC is accepted and is the default.
        let q = parse_full_query("SELECT A FROM T ORDER BY A ASC LIMIT 0").unwrap();
        assert!(!q.order_by[0].desc);
        assert_eq!(q.limit, Some(0));
    }

    #[test]
    fn order_by_limit_apply_to_set_operations() {
        let q =
            parse_full_query("SELECT A FROM T UNION SELECT A FROM U ORDER BY A LIMIT 3").unwrap();
        match &q.body {
            QueryBody::Plain(QueryExpr::SetOp { op, .. }) => assert_eq!(*op, SetOp::Union),
            other => panic!("expected set operation, got {other:?}"),
        }
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn plain_entry_point_rejects_aggregate_syntax() {
        assert!(parse_query("SELECT COUNT(*) FROM T").is_err());
        assert!(parse_query("SELECT A FROM T GROUP BY A").is_err());
        assert!(parse_query("SELECT A FROM T ORDER BY A").is_err());
        assert!(parse_query("SELECT A FROM T LIMIT 5").is_err());
        // The same texts parse through the full entry point.
        assert!(parse_full_query("SELECT COUNT(*) FROM T").is_ok());
        assert!(parse_full_query("SELECT A FROM T LIMIT 5").is_ok());
    }

    #[test]
    fn rejects_malformed_aggregates() {
        // SUM(*) and DISTINCT inside non-COUNT aggregates.
        assert!(parse_full_query("SELECT SUM(*) FROM T").is_err());
        assert!(parse_full_query("SELECT SUM(DISTINCT A) FROM T").is_err());
        // DISTINCT / * select lists cannot be combined with aggregation.
        assert!(parse_full_query("SELECT DISTINCT COUNT(A) FROM T").is_err());
        assert!(parse_full_query("SELECT DISTINCT A FROM T GROUP BY A").is_err());
        assert!(parse_full_query("SELECT * FROM T GROUP BY A").is_err());
        // LIMIT needs a non-negative integer.
        assert!(parse_full_query("SELECT A FROM T LIMIT -1").is_err());
        assert!(parse_full_query("SELECT A FROM T LIMIT B").is_err());
        // GROUP without BY.
        assert!(parse_full_query("SELECT A FROM T GROUP A").is_err());
    }

    #[test]
    fn statement_entry_accepts_full_queries() {
        let s =
            parse_statement("SELECT S.SCITY, COUNT(*) FROM SUPPLIER S GROUP BY S.SCITY").unwrap();
        match s {
            Statement::Query(q) => assert!(matches!(q.body, QueryBody::Agg(_))),
            other => panic!("expected query, got {other:?}"),
        }
        let s = parse_statement("SELECT * FROM T").unwrap();
        match s {
            Statement::Query(q) => assert!(q.as_plain().is_some()),
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn set_ops_are_left_associative() {
        let q = parse_query("SELECT A FROM T INTERSECT SELECT A FROM U EXCEPT SELECT A FROM V")
            .unwrap();
        match q {
            QueryExpr::SetOp { op, left, .. } => {
                assert_eq!(op, SetOp::Except);
                assert!(matches!(
                    *left,
                    QueryExpr::SetOp {
                        op: SetOp::Intersect,
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
    }
}
