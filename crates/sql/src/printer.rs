//! Pretty-printer: renders any AST node back to SQL text.
//!
//! Every rewrite the optimizer performs is surfaced to users as a concrete
//! SQL string, so the printer must produce text the parser accepts
//! (round-tripping is property-tested) and must parenthesize conditions so
//! precedence survives the trip.

use crate::ast::*;
use std::fmt::{self, Display, Write};

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(ct) => ct.fmt(f),
            Statement::CreateIndex(ci) => ci.fmt(f),
            Statement::Insert(i) => i.fmt(f),
            Statement::Query(q) => q.fmt(f),
        }
    }
}

impl fmt::Display for CreateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE {}INDEX {} ON {} ({})",
            if self.unique { "UNIQUE " } else { "" },
            self.name,
            self.table,
            join(&self.columns, ", ")
        )?;
        if self.kind == IndexKindAst::Hash {
            f.write_str(" USING HASH")?;
        }
        Ok(())
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", self.name)?;
        let mut first = true;
        for c in &self.columns {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{} {}", c.name, c.data_type)?;
            if c.not_null {
                f.write_str(" NOT NULL")?;
            }
        }
        for k in &self.constraints {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            match k {
                TableConstraintAst::PrimaryKey(cols) => {
                    write!(f, "PRIMARY KEY ({})", join(cols, ", "))?
                }
                TableConstraintAst::Unique(cols) => write!(f, "UNIQUE ({})", join(cols, ", "))?,
                TableConstraintAst::Check(e) => write!(f, "CHECK ({e})")?,
                TableConstraintAst::ForeignKey {
                    columns,
                    parent,
                    parent_columns,
                } => write!(
                    f,
                    "FOREIGN KEY ({}) REFERENCES {parent} ({})",
                    join(columns, ", "),
                    join(parent_columns, ", ")
                )?,
            }
        }
        f.write_char(')')
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if let Some(cols) = &self.columns {
            write!(f, " ({})", join(cols, ", "))?;
        }
        f.write_str(" VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "({})", join(row, ", "))?;
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.body.fmt(f)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                o.fmt(f)?;
            }
        }
        if let Some(k) = self.limit {
            write!(f, " LIMIT {k}")?;
        }
        Ok(())
    }
}

impl fmt::Display for QueryBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryBody::Plain(e) => e.fmt(f),
            QueryBody::Agg(a) => a.fmt(f),
        }
    }
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.col.fmt(f)?;
        if self.desc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            item.fmt(f)?;
        }
        f.write_str(" FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", t.table)?;
            if let Some(a) = &t.alias {
                write!(f, " {a}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", join(&self.group_by, ", "))?;
        }
        Ok(())
    }
}

impl fmt::Display for AggItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            AggItemKind::Group(c) => c.fmt(f)?,
            AggItemKind::Agg(c) => c.fmt(f)?,
        }
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*)", self.func.name()),
            Some(arg) => write!(
                f,
                "{}({}{arg})",
                self.func.name(),
                if self.distinct { "DISTINCT " } else { "" }
            ),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for QueryExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryExpr::Spec(s) => s.fmt(f),
            QueryExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                // Parenthesize operand set operations to preserve shape.
                fmt_setop_operand(f, left)?;
                write!(f, " {}{} ", op, if *all { " ALL" } else { "" })?;
                fmt_setop_operand(f, right)
            }
        }
    }
}

fn fmt_setop_operand(f: &mut fmt::Formatter<'_>, q: &QueryExpr) -> fmt::Result {
    match q {
        QueryExpr::Spec(s) => s.fmt(f),
        QueryExpr::SetOp { .. } => write!(f, "({q})"),
    }
}

impl fmt::Display for SetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
            SetOp::Union => "UNION",
        })
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct == Distinct::Distinct {
            f.write_str("DISTINCT ")?;
        } else {
            f.write_str("ALL ")?;
        }
        match &self.projection {
            Projection::Star => f.write_char('*')?,
            Projection::Columns(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", item.col)?;
                    if let Some(a) = &item.alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        f.write_str(" FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", t.table)?;
            if let Some(a) = &t.alias {
                write!(f, " {a}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Column(c) => c.fmt(f),
            Scalar::Literal(v) => v.fmt(f),
            Scalar::HostVar(h) => write!(f, ":{h}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Cmp { op, left, right } => write!(f, "{left} {op} {right}"),
            Expr::Between {
                scalar,
                low,
                high,
                negated,
            } => write!(
                f,
                "{scalar} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                scalar,
                list,
                negated,
            } => write!(
                f,
                "{scalar} {}IN ({})",
                if *negated { "NOT " } else { "" },
                join(list, ", ")
            ),
            Expr::IsNull { scalar, negated } => {
                write!(f, "{scalar} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Exists { negated, subquery } => write!(
                f,
                "{}EXISTS ({subquery})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InSubquery {
                scalar,
                subquery,
                negated,
            } => write!(
                f,
                "{scalar} {}IN ({subquery})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::And(a, b) => {
                fmt_operand(f, a, Prec::And)?;
                f.write_str(" AND ")?;
                fmt_operand(f, b, Prec::And)
            }
            Expr::Or(a, b) => {
                fmt_operand(f, a, Prec::Or)?;
                f.write_str(" OR ")?;
                fmt_operand(f, b, Prec::Or)
            }
            Expr::Not(a) => {
                f.write_str("NOT ")?;
                fmt_operand(f, a, Prec::Not)
            }
        }
    }
}

#[derive(PartialEq, PartialOrd)]
enum Prec {
    Or,
    And,
    Not,
}

fn prec_of(e: &Expr) -> Prec {
    match e {
        Expr::Or(_, _) => Prec::Or,
        Expr::And(_, _) => Prec::And,
        _ => Prec::Not,
    }
}

/// Print `e` as an operand of a context with precedence `ctx`,
/// parenthesizing when `e` binds less tightly.
fn fmt_operand(f: &mut fmt::Formatter<'_>, e: &Expr, ctx: Prec) -> fmt::Result {
    if prec_of(e) < ctx {
        write!(f, "({e})")
    } else {
        e.fmt(f)
    }
}

fn join<T: fmt::Display>(items: &[T], sep: &str) -> String {
    let mut s = String::new();
    for (i, it) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(sep);
        }
        let _ = write!(s, "{it}");
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expr, parse_full_query, parse_query, parse_statement};

    /// Parse → print → parse must be a fixpoint.
    fn roundtrip_query(sql: &str) {
        let q1 = parse_query(sql).unwrap();
        let printed = q1.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed}\nerror: {e}"));
        assert_eq!(q1, q2, "round-trip changed the AST for: {printed}");
    }

    #[test]
    fn roundtrips_paper_examples() {
        for sql in [
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' INTERSECT \
             SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
            "SELECT A FROM T INTERSECT ALL SELECT A FROM U",
            "SELECT A FROM T EXCEPT SELECT A FROM U EXCEPT ALL SELECT A FROM V",
        ] {
            roundtrip_query(sql);
        }
    }

    #[test]
    fn roundtrips_full_queries() {
        // Parse → print → parse must be a fixpoint for the aggregate /
        // ordering surface too: the printed text is the plan-cache key.
        for sql in [
            "SELECT S.SCITY, COUNT(*) FROM SUPPLIER S GROUP BY S.SCITY",
            "SELECT COUNT(DISTINCT P.SNO) AS N FROM PARTS P WHERE P.COLOR = 'RED'",
            "SELECT S.SCITY, SUM(S.BUDGET) AS TOTAL, MIN(S.SNO), MAX(S.SNO), AVG(S.BUDGET) \
             FROM SUPPLIER S GROUP BY S.SCITY",
            "SELECT S.SCITY FROM SUPPLIER S GROUP BY S.SCITY",
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S ORDER BY S.SNO LIMIT 10",
            "SELECT A FROM T ORDER BY A DESC, B LIMIT 0",
            "SELECT A FROM T UNION SELECT A FROM U ORDER BY A LIMIT 3",
            "SELECT S.SCITY, COUNT(*) FROM SUPPLIER S GROUP BY S.SCITY ORDER BY S.SCITY \
             LIMIT 2",
        ] {
            let q1 = parse_full_query(sql).unwrap();
            let printed = q1.to_string();
            let q2 = parse_full_query(&printed)
                .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed}\nerror: {e}"));
            assert_eq!(q1, q2, "round-trip changed the AST for: {printed}");
        }
    }

    #[test]
    fn parentheses_preserve_or_under_and() {
        let e = parse_expr("(A = 1 OR B = 2) AND C = 3").unwrap();
        let printed = e.to_string();
        assert_eq!(parse_expr(&printed).unwrap(), e);
        assert!(printed.contains('('), "needs parens: {printed}");
    }

    #[test]
    fn not_prints_with_parens_when_needed() {
        let e = parse_expr("NOT (A = 1 AND B = 2)").unwrap();
        let printed = e.to_string();
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    #[test]
    fn create_table_roundtrips() {
        let sql = "CREATE TABLE PARTS (SNO INTEGER NOT NULL, PNO INTEGER NOT NULL, \
                   PNAME VARCHAR, OEM-PNO INTEGER, COLOR VARCHAR, \
                   PRIMARY KEY (SNO, PNO), UNIQUE (OEM-PNO), \
                   CHECK (SNO BETWEEN 1 AND 499))";
        let s1 = parse_statement(sql).unwrap();
        let s2 = parse_statement(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn create_index_roundtrips() {
        // Parse → print → parse must be a fixpoint for the index DDL in
        // every shape: unique/plain, single/multi column, hash/btree.
        for sql in [
            "CREATE UNIQUE INDEX IDX_SNO ON SUPPLIER (SNO)",
            "CREATE INDEX IDX_COLOR ON PARTS (COLOR)",
            "CREATE INDEX IDX_SP ON PARTS (SNO, PNO)",
            "CREATE UNIQUE INDEX IDX_OEM ON PARTS (OEM-PNO) USING HASH",
            "create index idx_city on supplier (scity) using btree",
        ] {
            let s1 = parse_statement(sql).unwrap();
            let printed = s1.to_string();
            let s2 = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("printed DDL failed to parse: {printed}\nerror: {e}"));
            assert_eq!(s1, s2, "round-trip changed the AST for: {printed}");
        }
    }

    #[test]
    fn insert_roundtrips() {
        let sql = "INSERT INTO T (A, B) VALUES (1, 'x'), (NULL, 'O''Brien')";
        let s1 = parse_statement(sql).unwrap();
        let s2 = parse_statement(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn null_aware_predicate_prints() {
        let e = parse_expr("(A.SNO IS NULL AND S.SNO IS NULL) OR A.SNO = S.SNO").unwrap();
        let printed = e.to_string();
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }
}
