//! Hand-written SQL front end for the paper's SQL2 subset.
//!
//! The class of queries considered by the paper (its §2) is small:
//! query *specifications* of the `SELECT [ALL|DISTINCT] … FROM … WHERE …`
//! form — selection, projection and extended Cartesian product only, no
//! `GROUP BY`/`HAVING`, no aggregation, no arithmetic — plus query
//! *expressions* combining two specifications with `INTERSECT [ALL]` or
//! `EXCEPT [ALL]`. Predicates may contain `EXISTS`/`IN` subqueries and host
//! variables (`:SUPPLIER-NO`). DDL covers `CREATE TABLE` with
//! `PRIMARY KEY`, `UNIQUE` and `CHECK` constraints, and `INSERT` supplies
//! test data.
//!
//! The surface syntax is parsed by a hand-written lexer
//! ([`lexer`]) and recursive-descent parser ([`parser`]) into the AST of
//! [`ast`]; [`printer`] renders any AST node back to SQL so every rewrite
//! produced by the optimizer can be shown as a concrete query. `UNION
//! [ALL]` is also parsed and executed (the engine supports it) although the
//! paper's analysis does not use it.
//!
//! Identifier note: the paper's schema uses `-` inside names (`OEM-PNO`,
//! `:SUPPLIER-NO`). Since the considered subset has **no arithmetic**
//! (paper §2), the lexer treats `-` as an identifier character when it
//! continues an identifier, and as a numeric sign when it starts a literal.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::*;
pub use parser::{parse_expr, parse_full_query, parse_query, parse_statement, parse_statements};
