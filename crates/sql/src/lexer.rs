//! Lexer for the SQL subset.
//!
//! Produces a flat token stream. Keywords are recognized case-insensitively;
//! every other identifier is normalized to upper case by the identifier
//! newtypes downstream. `-` continues an identifier (the paper's schema has
//! `OEM-PNO`); a leading `-` directly before digits lexes as a negative
//! integer literal. The subset has no arithmetic (paper §2), so this is
//! unambiguous.

use uniq_types::{Error, Result};

/// A lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token proper.
    pub kind: TokenKind,
    /// Byte offset of the token's first character in the input.
    pub pos: usize,
}

/// The kinds of token the subset needs.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (normalized upper-case spelling).
    Keyword(&'static str),
    /// Non-keyword identifier (upper-cased).
    Ident(String),
    /// Host variable `:NAME` (upper-cased, without the colon).
    HostVar(String),
    /// Integer literal.
    Int(i64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` (also accepts `!=`)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// All keywords of the subset. Anything lexing as an identifier that
/// case-insensitively matches one of these becomes a [`TokenKind::Keyword`].
pub const KEYWORDS: &[&str] = &[
    "SELECT",
    "DISTINCT",
    "ALL",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "EXISTS",
    "IN",
    "BETWEEN",
    "IS",
    "NULL",
    "INTERSECT",
    "EXCEPT",
    "UNION",
    "CREATE",
    "TABLE",
    "PRIMARY",
    "KEY",
    "UNIQUE",
    "CHECK",
    "INTEGER",
    "INT",
    "VARCHAR",
    "CHAR",
    "INSERT",
    "INTO",
    "VALUES",
    "CONSTRAINT",
    "TRUE",
    "FALSE",
    "FOREIGN",
    "REFERENCES",
    "INDEX",
    "ON",
    "USING",
    "HASH",
    "BTREE",
    "GROUP",
    "BY",
    "ORDER",
    "LIMIT",
    "ASC",
    "DESC",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
];

fn keyword_of(word: &str) -> Option<&'static str> {
    KEYWORDS
        .iter()
        .find(|k| k.eq_ignore_ascii_case(word))
        .copied()
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Tokenize `input` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    pos,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    pos,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    pos,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos,
                });
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    pos,
                });
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        pos,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        pos,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        pos,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        pos,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        pos,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Lex {
                            pos,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                });
            }
            ':' => {
                i += 1;
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i] as char) {
                    i += 1;
                }
                if start == i {
                    return Err(Error::Lex {
                        pos,
                        message: "expected host variable name after ':'".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::HostVar(input[start..i].to_ascii_uppercase()),
                    pos,
                });
            }
            '-' | '0'..='9' => {
                let negative = c == '-';
                let start = if negative { i + 1 } else { i };
                if negative && (start >= bytes.len() || !bytes[start].is_ascii_digit()) {
                    return Err(Error::Lex {
                        pos,
                        message: "'-' must begin a numeric literal (no arithmetic in subset)"
                            .into(),
                    });
                }
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &input[i..j];
                let v: i64 = text.parse().map_err(|_| Error::Lex {
                    pos,
                    message: format!("integer literal out of range: {text}"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(v),
                    pos,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i] as char) {
                    i += 1;
                }
                let word = &input[start..i];
                match keyword_of(word) {
                    Some(k) => tokens.push(Token {
                        kind: TokenKind::Keyword(k),
                        pos,
                    }),
                    None => tokens.push(Token {
                        kind: TokenKind::Ident(word.to_ascii_uppercase()),
                        pos,
                    }),
                }
            }
            other => {
                return Err(Error::Lex {
                    pos,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: bytes.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_basic_select() {
        let k = kinds("SELECT DISTINCT S.SNO FROM SUPPLIER S");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("SELECT"),
                TokenKind::Keyword("DISTINCT"),
                TokenKind::Ident("S".into()),
                TokenKind::Dot,
                TokenKind::Ident("SNO".into()),
                TokenKind::Keyword("FROM"),
                TokenKind::Ident("SUPPLIER".into()),
                TokenKind::Ident("S".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword("SELECT"));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword("SELECT"));
    }

    #[test]
    fn hyphen_continues_identifiers() {
        let k = kinds("OEM-PNO");
        assert_eq!(k[0], TokenKind::Ident("OEM-PNO".into()));
    }

    #[test]
    fn host_variables() {
        let k = kinds(":supplier-no");
        assert_eq!(k[0], TokenKind::HostVar("SUPPLIER-NO".into()));
    }

    #[test]
    fn negative_and_positive_integers() {
        assert_eq!(kinds("-42")[0], TokenKind::Int(-42));
        assert_eq!(kinds("499")[0], TokenKind::Int(499));
    }

    #[test]
    fn string_literals_unescape_doubled_quotes() {
        assert_eq!(kinds("'O''Brien'")[0], TokenKind::Str("O'Brien".into()));
        assert_eq!(kinds("'RED'")[0], TokenKind::Str("RED".into()));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_comments_are_skipped() {
        let k = kinds("SELECT -- a comment\n*");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("SELECT"),
                TokenKind::Star,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("SELECT @").unwrap_err();
        match err {
            Error::Lex { pos, .. } => assert_eq!(pos, 7),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn bare_minus_is_rejected() {
        // No arithmetic in the subset: '-' must start a literal or continue
        // an identifier.
        assert!(tokenize("A - B").is_err());
    }
}
