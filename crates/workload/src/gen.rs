//! Scaled supplier databases for benchmarks.
//!
//! Same shape as Figure 1 but without the pedagogical `CHECK (SNO BETWEEN
//! 1 AND 499)` bound, so instances can grow to benchmark sizes. Keys and
//! the `OEM-PNO` candidate key are preserved — they are what the paper's
//! analyses exploit.

use crate::rng::SplitMix64;
use uniq_catalog::Database;
use uniq_types::{Result, Value};

/// Knobs for the scaled generator.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Number of suppliers.
    pub suppliers: usize,
    /// Parts per supplier.
    pub parts_per_supplier: usize,
    /// Agents per supplier.
    pub agents_per_supplier: usize,
    /// Fraction of parts that are red (the Example 1/8 predicate's
    /// selectivity), in [0, 1].
    pub red_fraction: f64,
    /// Number of distinct supplier names (smaller → more duplicate
    /// names, the Example 2 situation).
    pub name_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            suppliers: 1_000,
            parts_per_supplier: 10,
            agents_per_supplier: 2,
            red_fraction: 0.3,
            name_pool: 100,
            seed: 42,
        }
    }
}

/// The scaled schema: Figure 1 minus the small-range checks.
pub fn scaled_schema() -> Result<Database> {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE SUPPLIER (
           SNO INTEGER NOT NULL, SNAME VARCHAR, SCITY VARCHAR,
           BUDGET INTEGER, STATUS VARCHAR,
           PRIMARY KEY (SNO),
           CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')),
           CHECK (BUDGET <> 0 OR STATUS = 'Inactive'));
         CREATE TABLE PARTS (
           SNO INTEGER NOT NULL, PNO INTEGER NOT NULL, PNAME VARCHAR,
           OEM-PNO INTEGER, COLOR VARCHAR,
           PRIMARY KEY (SNO, PNO), UNIQUE (OEM-PNO),
           FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO));
         CREATE TABLE AGENTS (
           SNO INTEGER NOT NULL, ANO INTEGER NOT NULL, ANAME VARCHAR,
           ACITY VARCHAR,
           PRIMARY KEY (SNO, ANO),
           FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO));",
    )?;
    Ok(db)
}

/// Generate a populated database at the given scale.
pub fn scaled_database(config: &ScaleConfig) -> Result<Database> {
    let mut db = scaled_schema()?;
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let cities = ["Chicago", "New York", "Toronto"];
    let supplier = "SUPPLIER".into();
    let parts = "PARTS".into();
    let agents = "AGENTS".into();
    let mut oem = 1_000_000i64;
    for s in 1..=config.suppliers as i64 {
        db.insert(
            &supplier,
            vec![
                Value::Int(s),
                Value::str(format!("Name{}", rng.gen_range(0..config.name_pool.max(1)))),
                Value::str(cities[rng.gen_range(0..cities.len())]),
                Value::Int(rng.gen_range(1..100_000)),
                Value::str("Active"),
            ],
        )?;
        for p in 1..=config.parts_per_supplier as i64 {
            let red = rng.gen_bool(config.red_fraction.clamp(0.0, 1.0));
            oem += 1;
            db.insert(
                &parts,
                vec![
                    Value::Int(s),
                    Value::Int(p),
                    Value::str(format!("part{p}")),
                    Value::Int(oem),
                    Value::str(if red { "RED" } else { "GREEN" }),
                ],
            )?;
        }
        for a in 1..=config.agents_per_supplier as i64 {
            db.insert(
                &agents,
                vec![
                    Value::Int(s),
                    Value::Int(a),
                    Value::str(format!("agent{a}")),
                    Value::str(if rng.gen_bool(0.5) { "Ottawa" } else { "Hull" }),
                ],
            )?;
        }
    }
    Ok(db)
}

/// The benchmark index set: a unique index on the supplier key (every
/// probe is a guaranteed one-row lookup) and a non-unique ordered index
/// on the part color (sargable point and range scans). These are the two
/// access paths E19 contrasts with full-scan plans.
pub const INDEX_DDL: &str = "CREATE UNIQUE INDEX IDX_S_SNO ON SUPPLIER (SNO);
     CREATE INDEX IDX_P_COLOR ON PARTS (COLOR);";

/// A scaled database with the benchmark secondary indexes built.
pub fn indexed_database(config: &ScaleConfig) -> Result<Database> {
    let mut db = scaled_database(config)?;
    db.run_script(INDEX_DDL)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_database_has_expected_counts() {
        let cfg = ScaleConfig {
            suppliers: 50,
            parts_per_supplier: 4,
            agents_per_supplier: 2,
            ..Default::default()
        };
        let db = scaled_database(&cfg).unwrap();
        assert_eq!(db.row_count(&"SUPPLIER".into()).unwrap(), 50);
        assert_eq!(db.row_count(&"PARTS".into()).unwrap(), 200);
        assert_eq!(db.row_count(&"AGENTS".into()).unwrap(), 100);
    }

    #[test]
    fn indexed_database_carries_the_benchmark_indexes() {
        let cfg = ScaleConfig {
            suppliers: 20,
            ..Default::default()
        };
        let db = indexed_database(&cfg).unwrap();
        let supplier = db.catalog().table(&"SUPPLIER".into()).unwrap();
        let sno = supplier.index("IDX_S_SNO").unwrap();
        assert!(sno.unique, "supplier key index registers as unique");
        assert!(db
            .catalog()
            .table(&"PARTS".into())
            .unwrap()
            .index("IDX_P_COLOR")
            .is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ScaleConfig {
            suppliers: 10,
            ..Default::default()
        };
        let a = scaled_database(&cfg).unwrap();
        let b = scaled_database(&cfg).unwrap();
        assert_eq!(
            a.rows(&"SUPPLIER".into()).unwrap(),
            b.rows(&"SUPPLIER".into()).unwrap()
        );
    }

    #[test]
    fn red_fraction_zero_and_one() {
        let cfg = ScaleConfig {
            suppliers: 10,
            parts_per_supplier: 5,
            red_fraction: 1.0,
            ..Default::default()
        };
        let db = scaled_database(&cfg).unwrap();
        assert!(db
            .rows(&"PARTS".into())
            .unwrap()
            .iter()
            .all(|r| r[4] == Value::str("RED")));
    }
}
