//! A small vendored deterministic RNG (SplitMix64), replacing the
//! `rand` crate so the workspace builds with no registry access.
//!
//! Only the surface the generators use is provided: `seed_from_u64`,
//! `gen_range` over `a..b` / `a..=b` integer ranges, and `gen_bool`.
//! Streams differ from `rand::SmallRng`, so seeds produce different
//! (but still deterministic and portable) schemas/corpora than the
//! pre-vendoring builds did.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: tiny, fast, passes BigCrush for this use; one `u64` of
/// state and an odd-constant Weyl sequence.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// An RNG seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer within `range` (`lo..hi` or `lo..=hi`).
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: IntoInclusiveBounds<T>,
    {
        let (lo, hi) = range.into_inclusive_bounds();
        T::sample_inclusive(self, lo, hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard u64→f64 unit-interval map.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integers [`SplitMix64::gen_range`] can sample.
pub trait UniformInt: Sized {
    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`SplitMix64::gen_range`].
pub trait IntoInclusiveBounds<T> {
    /// The `(lo, hi)` inclusive bounds; panics when empty.
    fn into_inclusive_bounds(self) -> (T, T);
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive(rng: &mut SplitMix64, lo: $t, hi: $t) -> $t {
                debug_assert!(lo <= hi);
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }

        impl IntoInclusiveBounds<$t> for Range<$t> {
            fn into_inclusive_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range for gen_range");
                (self.start, self.end - 1)
            }
        }

        impl IntoInclusiveBounds<$t> for RangeInclusive<$t> {
            fn into_inclusive_bounds(self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "empty range for gen_range");
                (*self.start(), *self.end())
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_inclusive_and_exclusive() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut hit_max = false;
        for _ in 0..2000 {
            let x: i64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&x));
            hit_max |= x == 5;
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
        }
        assert!(hit_max, "inclusive upper bound never sampled");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
