//! Client-driver mode: the batch loop of [`crate::driver`], but over
//! TCP against a running `uniqd`.
//!
//! Where [`run_batch`](crate::driver::run_batch) exercises a
//! [`Session`](uniq_engine::Session) in-process, [`run_client_batch`]
//! opens `clients` real connections and fans the corpus over them from
//! one shared atomic cursor — the full served path: frame encode →
//! TCP → per-connection session → shared plan cache → MVCC snapshot →
//! row batches back. Experiment E21 uses it to compare multi-client
//! QPS against the in-process serial driver.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use uniq_server::Client;

/// Aggregated outcome of one client-driver run.
#[derive(Debug, Clone, Default)]
pub struct ClientBatchReport {
    /// Statements sent (successfully answered or not).
    pub queries: u64,
    /// Statements answered with an `Error` frame or a transport error.
    pub errors: u64,
    /// First error message observed, if any.
    pub first_error: Option<String>,
    /// Total result rows received over the wire.
    pub rows: u64,
    /// Replies whose `RowHeader` carried `cache_hit` — the *server's*
    /// shared plan cache, observed end-to-end.
    pub cache_hits: u64,
    /// Elapsed wall-clock for the whole run.
    pub elapsed: Duration,
    /// Concurrent client connections used.
    pub clients: usize,
}

impl ClientBatchReport {
    /// Statements per second of elapsed wall-clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }

    /// Server-side cache hits as a fraction of sent statements.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

/// Fan `queries` over `clients` concurrent connections to the daemon
/// at `addr`. Each worker owns one connection (one server-side
/// session); statements are claimed from a shared cursor, so fast
/// connections take more work. A worker that cannot connect reports
/// every statement it would have run as an error rather than silently
/// shrinking the load.
pub fn run_client_batch(addr: &str, queries: &[String], clients: usize) -> ClientBatchReport {
    let clients = clients.max(1).min(queries.len().max(1));
    let cursor = AtomicUsize::new(0);
    let report = Mutex::new(ClientBatchReport {
        clients,
        ..ClientBatchReport::default()
    });

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut tally = ClientBatchReport::default();
                let mut client = match Client::connect(addr) {
                    Ok(client) => Some(client),
                    Err(e) => {
                        tally.first_error = Some(format!("connect {addr}: {e}"));
                        None
                    }
                };
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(sql) = queries.get(i) else { break };
                    tally.queries += 1;
                    let Some(client) = client.as_mut() else {
                        tally.errors += 1;
                        continue;
                    };
                    match client.query(sql) {
                        Ok(reply) => {
                            tally.rows += reply.rows.len() as u64;
                            tally.cache_hits += u64::from(reply.cache_hit);
                        }
                        Err(e) => {
                            tally.errors += 1;
                            tally
                                .first_error
                                .get_or_insert_with(|| format!("{sql}: {e}"));
                        }
                    }
                }
                let mut report = report.lock().expect("client report poisoned");
                report.queries += tally.queries;
                report.errors += tally.errors;
                report.rows += tally.rows;
                report.cache_hits += tally.cache_hits;
                if report.first_error.is_none() {
                    report.first_error = tally.first_error;
                }
            });
        }
    });

    let mut report = report.into_inner().expect("client report poisoned");
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniq_engine::SharedEngine;
    use uniq_server::{Server, ServerConfig};

    fn corpus(reps: usize) -> Vec<String> {
        let distinct = [
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto'",
        ];
        (0..reps)
            .flat_map(|_| distinct.iter().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn client_batch_drives_a_live_server() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        let server = Server::start(engine, ("127.0.0.1", 0), ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let report = run_client_batch(&addr, &corpus(10), 4);
        assert_eq!(report.queries, 30);
        assert_eq!(report.errors, 0, "{:?}", report.first_error);
        assert!(report.rows > 0);
        // 3 distinct statements; at most one compile per (statement,
        // racing connection) — the shared cache serves the rest.
        assert!(report.cache_hits >= 30 - 3 * 4, "{report:?}");
        assert!(report.hit_rate() > 0.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn unreachable_server_counts_errors_not_panics() {
        // Reserve a port, then close it so nothing is listening.
        let addr = {
            let sock = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            sock.local_addr().unwrap().to_string()
        };
        let report = run_client_batch(&addr, &corpus(2), 2);
        assert_eq!(report.queries, 6);
        assert_eq!(report.errors, 6);
        assert!(report.first_error.unwrap().contains("connect"));
    }
}
