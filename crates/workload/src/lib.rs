//! Workload generation: scaled supplier databases, random valid
//! instances for property tests, and a labelled query corpus.
//!
//! Everything is deterministic given a seed, so experiments and property
//! tests are reproducible run to run.

pub mod client_driver;
pub mod corpus;
pub mod driver;
pub mod gen;
pub mod instance;
pub mod rng;

pub use client_driver::{run_client_batch, ClientBatchReport};
pub use corpus::{generate_corpus, CorpusQuery, CorpusStats};
pub use driver::{run_batch, BatchOptions, BatchReport};
pub use gen::{indexed_database, scaled_database, scaled_schema, ScaleConfig, INDEX_DDL};
pub use instance::{columnar_session_pair, random_instance};
