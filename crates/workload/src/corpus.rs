//! A labelled corpus of `SELECT DISTINCT` queries (experiment E3).
//!
//! §5.1 argues that redundant `DISTINCT`s are common because CASE tools
//! and defensive practitioners emit them indiscriminately. The corpus
//! generator plays that CASE tool: random select-project-join queries
//! over the supplier schema, all marked `DISTINCT`. Each query is then
//! labelled three ways:
//!
//! * does the paper's **Algorithm 1** prove it duplicate-free?
//! * does the **FD-closure test** prove it duplicate-free?
//! * **empirically**: executed (without `DISTINCT`) over a battery of
//!   random valid instances — were duplicate rows ever observed?
//!
//! Soundness demands `proved ⇒ never observed`; the integration suite
//! asserts exactly that over the whole corpus.

use crate::instance::random_instance;
use crate::rng::SplitMix64;
use std::collections::HashMap;
use uniq_core::algorithm1::{algorithm1, Algorithm1Options};
use uniq_core::analysis::unique_projection;
use uniq_engine::{ExecOptions, Executor};
use uniq_plan::{bind_query, BoundQuery, HostVars};
use uniq_sql::{parse_query, Distinct};
use uniq_types::Result;

/// One corpus entry with its labels.
#[derive(Debug, Clone)]
pub struct CorpusQuery {
    /// The generated SQL (always `SELECT DISTINCT`).
    pub sql: String,
    /// Algorithm 1's verdict.
    pub alg1_unique: bool,
    /// The FD-closure test's verdict.
    pub fd_unique: bool,
    /// Whether executing without `DISTINCT` produced duplicate rows on
    /// any of the test instances.
    pub duplicates_observed: bool,
}

/// Aggregate corpus statistics (the E3 table).
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Queries generated.
    pub total: usize,
    /// Proven duplicate-free by Algorithm 1.
    pub alg1_yes: usize,
    /// Proven duplicate-free by the FD test.
    pub fd_yes: usize,
    /// Queries whose execution showed actual duplicates.
    pub with_duplicates: usize,
    /// Proven-unique queries that showed duplicates (MUST be zero).
    pub unsound: usize,
}

impl CorpusStats {
    /// Tally a corpus.
    pub fn of(queries: &[CorpusQuery]) -> CorpusStats {
        let mut s = CorpusStats {
            total: queries.len(),
            ..Default::default()
        };
        for q in queries {
            if q.alg1_unique {
                s.alg1_yes += 1;
            }
            if q.fd_unique {
                s.fd_yes += 1;
            }
            if q.duplicates_observed {
                s.with_duplicates += 1;
                if q.alg1_unique || q.fd_unique {
                    s.unsound += 1;
                }
            }
        }
        s
    }
}

struct TableInfo {
    name: &'static str,
    alias: &'static str,
    int_cols: &'static [&'static str],
    str_cols: &'static [&'static str],
}

const TABLES: &[TableInfo] = &[
    TableInfo {
        name: "SUPPLIER",
        alias: "S",
        int_cols: &["SNO", "BUDGET"],
        str_cols: &["SNAME", "SCITY", "STATUS"],
    },
    TableInfo {
        name: "PARTS",
        alias: "P",
        int_cols: &["SNO", "PNO", "OEM-PNO"],
        str_cols: &["PNAME", "COLOR"],
    },
    TableInfo {
        name: "AGENTS",
        alias: "A",
        int_cols: &["SNO", "ANO"],
        str_cols: &["ANAME", "ACITY"],
    },
];

fn random_query(rng: &mut SplitMix64) -> String {
    let two_tables = rng.gen_bool(0.6);
    let t1 = &TABLES[rng.gen_range(0..TABLES.len())];
    let t2 = if two_tables {
        loop {
            let t = &TABLES[rng.gen_range(0..TABLES.len())];
            if t.name != t1.name {
                break Some(t);
            }
        }
    } else {
        None
    };

    // Projection: 1–3 random columns across the chosen tables.
    let mut proj: Vec<String> = Vec::new();
    let tables: Vec<&TableInfo> = std::iter::once(t1).chain(t2).collect();
    let n_proj = rng.gen_range(1..=3);
    for _ in 0..n_proj {
        let t = tables[rng.gen_range(0..tables.len())];
        let cols: Vec<&str> = t.int_cols.iter().chain(t.str_cols).copied().collect();
        let c = cols[rng.gen_range(0..cols.len())];
        let item = format!("{}.{}", t.alias, c);
        if !proj.contains(&item) {
            proj.push(item);
        }
    }

    // Predicate: join condition (usually) + 0–3 extra conjuncts.
    let mut conjuncts: Vec<String> = Vec::new();
    if let Some(t2) = t2 {
        if rng.gen_bool(0.9) {
            conjuncts.push(format!("{}.SNO = {}.SNO", t1.alias, t2.alias));
        }
    }
    for _ in 0..rng.gen_range(0..=3) {
        let t = tables[rng.gen_range(0..tables.len())];
        let atom = match rng.gen_range(0..5) {
            0 => {
                let c = t.int_cols[rng.gen_range(0..t.int_cols.len())];
                format!("{}.{} = {}", t.alias, c, rng.gen_range(1..=6))
            }
            1 => {
                let c = t.str_cols[rng.gen_range(0..t.str_cols.len())];
                format!("{}.{} = 'part{}'", t.alias, c, rng.gen_range(1..=3))
            }
            2 => {
                let c = t.int_cols[rng.gen_range(0..t.int_cols.len())];
                let lo = rng.gen_range(1..=3);
                format!("{}.{} BETWEEN {} AND {}", t.alias, c, lo, lo + 2)
            }
            3 => {
                let c = t.int_cols[rng.gen_range(0..t.int_cols.len())];
                format!(
                    "({}.{} = {} OR {}.{} = {})",
                    t.alias,
                    c,
                    rng.gen_range(1..=3),
                    t.alias,
                    c,
                    rng.gen_range(4..=6)
                )
            }
            _ => {
                let c = t.int_cols[rng.gen_range(0..t.int_cols.len())];
                format!("{}.{} IS NOT NULL", t.alias, c)
            }
        };
        conjuncts.push(atom);
    }

    let mut sql = format!(
        "SELECT DISTINCT {} FROM {} {}",
        proj.join(", "),
        t1.name,
        t1.alias
    );
    if let Some(t2) = t2 {
        sql.push_str(&format!(", {} {}", t2.name, t2.alias));
    }
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    sql
}

/// Does executing the query (with `DISTINCT` suppressed) on this instance
/// produce duplicate rows?
fn has_duplicates(db: &uniq_catalog::Database, bound: &BoundQuery) -> Result<bool> {
    let mut all = bound.clone();
    if let BoundQuery::Spec(spec) = &mut all {
        spec.distinct = Distinct::All;
    }
    let hv = HostVars::new();
    let mut ex = Executor::new(db, &hv, ExecOptions::default());
    let rows = ex.run(&all)?;
    let mut counts: HashMap<Vec<uniq_types::Value>, usize> = HashMap::new();
    for r in rows {
        let c = counts.entry(r).or_insert(0);
        *c += 1;
        if *c > 1 {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Generate and label a corpus of `n` queries.
///
/// `instances` controls how many random databases each query is executed
/// on for the empirical label.
pub fn generate_corpus(seed: u64, n: usize, instances: usize) -> Result<Vec<CorpusQuery>> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let schema_db = uniq_catalog::sample::supplier_schema()?;
    let dbs: Vec<uniq_catalog::Database> = (0..instances)
        .map(|i| random_instance(seed.wrapping_add(i as u64), 12, 24, 12))
        .collect::<Result<_>>()?;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let sql = random_query(&mut rng);
        let ast = parse_query(&sql)?;
        let bound = bind_query(schema_db.catalog(), &ast)?;
        let spec = bound.as_spec().expect("corpus queries are single blocks");
        let alg1 = algorithm1(spec, &Algorithm1Options::default()).unique;
        let fd = unique_projection(spec).unique;
        let mut dups = false;
        for db in &dbs {
            if has_duplicates(db, &bound)? {
                dups = true;
                break;
            }
        }
        out.push(CorpusQuery {
            sql,
            alg1_unique: alg1,
            fd_unique: fd,
            duplicates_observed: dups,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_generates_and_labels() {
        let corpus = generate_corpus(1, 60, 4).unwrap();
        let stats = CorpusStats::of(&corpus);
        assert_eq!(stats.total, 60);
        // The analyses must be sound on every query.
        assert_eq!(stats.unsound, 0, "provably-unique query showed duplicates");
        // The generator must produce a mix of provable and unprovable.
        assert!(stats.fd_yes > 0, "no provably-unique queries generated");
        assert!(
            stats.fd_yes < stats.total,
            "every query provably unique — generator too easy"
        );
        // FD test subsumes Algorithm 1.
        assert!(stats.fd_yes >= stats.alg1_yes);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus(9, 10, 2).unwrap();
        let b = generate_corpus(9, 10, 2).unwrap();
        assert_eq!(
            a.iter().map(|q| &q.sql).collect::<Vec<_>>(),
            b.iter().map(|q| &q.sql).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicates_do_get_observed() {
        // Sanity: some generated query must actually duplicate on some
        // instance, otherwise the empirical label is vacuous.
        let corpus = generate_corpus(3, 80, 6).unwrap();
        assert!(
            corpus.iter().any(|q| q.duplicates_observed),
            "no duplicates observed anywhere — instances too small?"
        );
    }
}
