//! Random *valid* instances of the Figure 1 schema, for property tests.
//!
//! Values are drawn from deliberately tiny domains so that interesting
//! coincidences — duplicate names, shared parts, `NULL` candidate-key
//! values — occur with high probability in small instances. Constraint
//! enforcement in [`uniq_catalog::Database::insert`] guarantees validity;
//! rows that would violate a key are simply skipped (rejection sampling),
//! which keeps the generator total.

use crate::rng::SplitMix64;
use uniq_catalog::Database;
use uniq_engine::Session;
use uniq_types::{Result, Value};

/// Generate a random valid instance with roughly the requested row
/// counts (key collisions may make tables slightly smaller).
pub fn random_instance(
    seed: u64,
    suppliers: usize,
    parts: usize,
    agents: usize,
) -> Result<Database> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut db = uniq_catalog::sample::supplier_schema()?;
    let names = ["Acme", "Globex", "Initech"];
    let cities = ["Chicago", "New York", "Toronto"];
    let colors = ["RED", "GREEN", "BLUE"];
    let supplier = "SUPPLIER".into();
    let parts_t = "PARTS".into();
    let agents_t = "AGENTS".into();

    let mut snos: Vec<i64> = Vec::new();
    for _ in 0..suppliers {
        let sno = rng.gen_range(1..=20);
        let budget = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(1..=5))
        };
        let row = vec![
            Value::Int(sno),
            if rng.gen_bool(0.15) {
                Value::Null
            } else {
                Value::str(names[rng.gen_range(0..names.len())])
            },
            Value::str(cities[rng.gen_range(0..cities.len())]),
            budget,
            Value::str("Active"),
        ];
        if db.insert(&supplier, row).is_ok() {
            snos.push(sno);
        }
    }
    for _ in 0..parts {
        if snos.is_empty() {
            break;
        }
        let sno = snos[rng.gen_range(0..snos.len())];
        let row = vec![
            Value::Int(sno),
            Value::Int(rng.gen_range(1..=6)),
            Value::str(format!("part{}", rng.gen_range(1..=3))),
            if rng.gen_bool(0.3) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(100..=120))
            },
            Value::str(colors[rng.gen_range(0..colors.len())]),
        ];
        let _ = db.insert(&parts_t, row); // rejection sampling on key clash
    }
    for _ in 0..agents {
        if snos.is_empty() {
            break;
        }
        let sno = snos[rng.gen_range(0..snos.len())];
        let row = vec![
            Value::Int(sno),
            Value::Int(rng.gen_range(1..=4)),
            Value::str(format!("agent{}", rng.gen_range(1..=3))),
            Value::str(if rng.gen_bool(0.5) { "Ottawa" } else { "Hull" }),
        ];
        let _ = db.insert(&agents_t, row);
    }
    Ok(db)
}

/// A row-oracle / columnar session pair over the *same* random
/// instance: the first is the serial row executor (the correctness
/// oracle), the second runs cost-based columnar execution at the given
/// parallel degree over a dictionary-encoded copy of the instance. The
/// fixture every columnar agreement property test starts from.
pub fn columnar_session_pair(
    seed: u64,
    suppliers: usize,
    parts: usize,
    agents: usize,
    degree: usize,
) -> Result<(Session, Session)> {
    let db = random_instance(seed, suppliers, parts, agents)?;
    let oracle = Session::new(db.clone());
    let mut columnar = Session::new(db);
    if degree > 1 {
        columnar = columnar.with_degree(degree);
    }
    Ok((oracle, columnar.with_columnar()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_valid_and_nonempty() {
        for seed in 0..20 {
            let db = random_instance(seed, 10, 20, 10).unwrap();
            // Validity is enforced by construction; sanity-check shape.
            assert!(db.row_count(&"SUPPLIER".into()).unwrap() <= 10);
            let parts = db.rows(&"PARTS".into()).unwrap();
            // At most one NULL OEM-PNO (paper §2.1).
            let nulls = parts.iter().filter(|r| r[3].is_null()).count();
            assert!(nulls <= 1, "seed {seed}: {nulls} NULL OEM-PNOs");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_instance(7, 10, 20, 5).unwrap();
        let b = random_instance(7, 10, 20, 5).unwrap();
        assert_eq!(
            a.rows(&"PARTS".into()).unwrap(),
            b.rows(&"PARTS".into()).unwrap()
        );
    }

    #[test]
    fn columnar_pair_shares_the_instance_and_licenses_columnar() {
        let (oracle, columnar) = columnar_session_pair(11, 10, 20, 10, 1).unwrap();
        let sql = "SELECT DISTINCT P.COLOR, S.SCITY FROM PARTS P, SUPPLIER S \
                   WHERE P.SNO = S.SNO AND P.COLOR = 'RED'";
        let a = oracle.query(sql).unwrap();
        let b = columnar.query(sql).unwrap();
        let sort = |mut rows: Vec<Vec<Value>>| {
            rows.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            rows
        };
        assert_eq!(sort(a.rows), sort(b.rows));
        assert_eq!(a.stats.vector_ops, 0, "oracle stays on the row path");
        assert!(b.stats.vector_ops > 0, "pair must exercise the kernels");
    }

    #[test]
    fn duplicate_names_occur() {
        // The tiny name pool must produce duplicate-name suppliers in
        // some seed quickly (Example 2's precondition).
        let found = (0..50).any(|seed| {
            let db = random_instance(seed, 10, 0, 0).unwrap();
            let rows = db.rows(&"SUPPLIER".into()).unwrap();
            rows.iter()
                .enumerate()
                .any(|(i, r)| rows[..i].iter().any(|q| !r[1].is_null() && r[1] == q[1]))
        });
        assert!(found);
    }
}
