//! Batch execution of a query corpus over a shared [`Session`] and a
//! `std::thread::scope` worker pool.
//!
//! This is the serving loop in miniature: every worker pulls the next
//! statement from a shared cursor and runs it through the session's
//! full path (parse → plan-cache probe → bind/optimize on a miss →
//! execute), so the plan cache is exercised exactly as it would be by
//! concurrent clients — one thread's compilation becomes every other
//! thread's cache hit. Per-stage wall-clock and executor work counters
//! are folded into one [`BatchReport`] for the bench report.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use uniq_engine::{CacheStats, Degree, ExecStats, QErrorStats, Session, StageTimings};

/// Knobs for [`run_batch`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Worker threads. `0` (the default) means one worker per available
    /// core — divided by the per-query parallel degree when one is in
    /// effect, so intra-query workers and batch workers don't
    /// oversubscribe the machine together.
    pub threads: usize,
    /// Override the session's intra-query parallel degree for this batch
    /// (`None` keeps the session's own setting). The batch runs on a
    /// clone sharing the plan cache; the degree enters the plan
    /// fingerprint, so serial and parallel runs never share an entry.
    pub degree: Option<Degree>,
}

/// Aggregated outcome of one batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Statements executed (successfully or not).
    pub queries: u64,
    /// Statements that returned an error (text preserved for the first).
    pub errors: u64,
    /// First error message observed, if any.
    pub first_error: Option<String>,
    /// Total result rows produced.
    pub rows: u64,
    /// Queries served from the plan cache.
    pub cache_hits: u64,
    /// Per-stage wall-clock time summed over all statements (CPU time
    /// across workers, not elapsed time).
    pub timings: StageTimings,
    /// Executor work counters summed over all statements.
    pub exec: ExecStats,
    /// Plan-cache counter deltas attributable to this batch.
    pub cache: CacheStats,
    /// Rewrite-rule firings across the batch, keyed by rule name. Cache
    /// hits re-count the firings recorded in the cached plan's trace, so
    /// this reflects what the *served* plans did, not just compilations.
    pub rule_fires: BTreeMap<String, u64>,
    /// Cardinality-estimation accuracy (q-error) aggregated over every
    /// operator of every cost-based plan served; empty when the session
    /// runs on static executor options.
    pub qerror: QErrorStats,
    /// Elapsed wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

impl BatchReport {
    /// Cache hits as a fraction of executed statements.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Statements per second of elapsed wall-clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }
}

/// Worker-local accumulator, merged into the report once per thread.
#[derive(Default)]
struct WorkerTally {
    queries: u64,
    errors: u64,
    first_error: Option<String>,
    rows: u64,
    cache_hits: u64,
    timings: StageTimings,
    exec: ExecStats,
    rule_fires: BTreeMap<String, u64>,
    qerror: QErrorStats,
}

impl WorkerTally {
    fn merge_into(self, report: &mut BatchReport) {
        report.queries += self.queries;
        report.errors += self.errors;
        if report.first_error.is_none() {
            report.first_error = self.first_error;
        }
        report.rows += self.rows;
        report.cache_hits += self.cache_hits;
        report.timings.absorb(&self.timings);
        report.exec.merge(&self.exec);
        for (rule, fires) in self.rule_fires {
            *report.rule_fires.entry(rule).or_insert(0) += fires;
        }
        report.qerror.absorb(&self.qerror);
    }
}

fn cache_delta(after: &CacheStats, before: &CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        insertions: after.insertions - before.insertions,
        evictions: after.evictions - before.evictions,
        invalidations: after.invalidations - before.invalidations,
    }
}

/// Execute every statement of `queries` against `session`, fanned out
/// over a scoped worker pool. Workers share the session (and therefore
/// its plan cache) by reference; statements are claimed from a single
/// atomic cursor, so the distribution is dynamic — fast workers take
/// more work.
pub fn run_batch(session: &Session, queries: &[String], options: BatchOptions) -> BatchReport {
    // A per-batch degree override runs on a clone: it shares the plan
    // cache (the degree is part of the fingerprint, so entries stay
    // separate) but not the session's own executor settings.
    let session = match options.degree {
        Some(degree) => {
            let mut s = session.clone();
            s.exec.degree = degree;
            s.planner.degree = degree;
            Some(s)
        }
        None => None,
    }
    .map_or_else(
        || std::borrow::Cow::Borrowed(session),
        std::borrow::Cow::Owned,
    );
    let per_query = session.exec.degree.resolve();
    let threads = if options.threads == 0 {
        // Auto: split the cores between batch workers and each query's
        // own worker pool.
        (std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            / per_query)
            .max(1)
    } else {
        options.threads
    }
    .min(queries.len().max(1));
    let session: &Session = &session;

    let cache_before = session.cache_stats();
    let cursor = AtomicUsize::new(0);
    let report = Mutex::new(BatchReport {
        threads,
        ..BatchReport::default()
    });

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut tally = WorkerTally::default();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(sql) = queries.get(i) else { break };
                    tally.queries += 1;
                    match session.query(sql) {
                        Ok(out) => {
                            tally.rows += out.rows.len() as u64;
                            tally.cache_hits += u64::from(out.cache_hit);
                            tally.timings.absorb(&out.timings);
                            tally.exec.merge(&out.stats);
                            for step in &out.trace.steps {
                                *tally.rule_fires.entry(step.rule.to_string()).or_insert(0) += 1;
                            }
                            if let Some(cards) = &out.cards {
                                tally.qerror.record(cards);
                            }
                        }
                        Err(e) => {
                            tally.errors += 1;
                            tally
                                .first_error
                                .get_or_insert_with(|| format!("{sql}: {e}"));
                        }
                    }
                }
                tally.merge_into(&mut report.lock().expect("batch report poisoned"));
            });
        }
    });

    let mut report = report.into_inner().expect("batch report poisoned");
    report.elapsed = start.elapsed();
    report.cache = cache_delta(&session.cache_stats(), &cache_before);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_database;

    fn repeated_corpus(reps: usize) -> Vec<String> {
        let distinct = [
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
        ];
        (0..reps)
            .flat_map(|_| distinct.iter().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn single_worker_batch_hits_after_first_round() {
        let session = Session::new(supplier_database().unwrap());
        let corpus = repeated_corpus(10);
        let report = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 1,
                degree: None,
            },
        );
        assert_eq!(report.queries, 30);
        assert_eq!(report.errors, 0, "{:?}", report.first_error);
        // Three distinct statements compile once each; the rest hit.
        assert_eq!(report.cache_hits, 27);
        assert_eq!(report.cache.insertions, 3);
        assert!(report.timings.execute_ns > 0);
        assert!(report.rows > 0);
        // Per-rule fire counts aggregate over served plans: all 10
        // repetitions of each statement count, hits included.
        assert_eq!(report.rule_fires.get("distinct-removal"), Some(&10));
        assert_eq!(report.rule_fires.get("subquery-to-join"), Some(&20));
        assert_eq!(report.rule_fires.get("intersect-to-exists"), Some(&10));
    }

    #[test]
    fn shared_cache_counters_survive_concurrency() {
        let session = Session::new(supplier_database().unwrap());
        let corpus = repeated_corpus(40);
        let report = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 8,
                degree: None,
            },
        );
        assert_eq!(report.queries, 120);
        assert_eq!(report.errors, 0, "{:?}", report.first_error);
        // Every probe is either a hit or a miss — no lost updates.
        assert_eq!(report.cache.hits + report.cache.misses, 120);
        assert_eq!(report.cache_hits, report.cache.hits);
        // Concurrent first-misses may compile the same statement more
        // than once (last insert wins), but never more than once per
        // worker, and the cache converges to the three distinct plans.
        assert!(report.cache.insertions >= 3);
        assert!(report.cache.insertions <= 3 * report.threads as u64);
        assert!(report.cache_hits >= 120 - 3 * report.threads as u64);
        assert_eq!(session.cache.len(), 3);
    }

    #[test]
    fn cost_based_batch_reports_qerror() {
        let session = Session::new(supplier_database().unwrap()).with_cost_based();
        let corpus = repeated_corpus(4);
        let report = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 2,
                degree: None,
            },
        );
        assert_eq!(report.errors, 0, "{:?}", report.first_error);
        assert!(report.qerror.ops > 0, "cost-based plans are measured");
        assert!(report.qerror.max >= 1.0);
        assert!(report.qerror.mean() >= 1.0);
        // A static session measures nothing.
        let session = Session::new(supplier_database().unwrap());
        let report = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 1,
                degree: None,
            },
        );
        assert_eq!(report.qerror.ops, 0);
    }

    #[test]
    fn errors_are_counted_not_fatal() {
        let session = Session::new(supplier_database().unwrap());
        let corpus = vec![
            "SELECT S.SNO FROM SUPPLIER S".to_string(),
            "SELECT NO_SUCH.COL FROM NOWHERE N".to_string(),
        ];
        let report = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 1,
                degree: None,
            },
        );
        assert_eq!(report.queries, 2);
        assert_eq!(report.errors, 1);
        assert!(report.first_error.unwrap().contains("NOWHERE"));
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let session = Session::new(supplier_database().unwrap());
        let corpus = repeated_corpus(2);
        let report = run_batch(&session, &corpus, BatchOptions::default());
        assert!(report.threads >= 1);
        assert_eq!(report.queries, 6);
    }

    #[test]
    fn parallel_degree_batch_agrees_with_serial_totals() {
        let session = Session::new(supplier_database().unwrap());
        let corpus = repeated_corpus(5);
        let serial = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 1,
                degree: None,
            },
        );
        let parallel = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 1,
                degree: Some(Degree::Fixed(3)),
            },
        );
        assert_eq!(parallel.errors, 0, "{:?}", parallel.first_error);
        assert_eq!(parallel.queries, serial.queries);
        assert_eq!(parallel.rows, serial.rows, "same result multisets");
        assert!(serial.exec.morsels == 0, "serial runs dispatch no morsels");
        assert!(parallel.exec.morsels > 0, "parallel runs count morsels");
    }

    #[test]
    fn serial_and_parallel_batches_do_not_share_cached_plans() {
        let session = Session::new(supplier_database().unwrap());
        let corpus = repeated_corpus(1);
        run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 1,
                degree: None,
            },
        );
        let parallel = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 1,
                degree: Some(Degree::Fixed(2)),
            },
        );
        assert_eq!(
            parallel.cache.hits, 0,
            "a parallel batch must compile its own plans"
        );
        assert_eq!(session.cache.len(), 6, "3 serial + 3 parallel entries");
    }

    #[test]
    fn auto_threads_divide_cores_by_query_degree() {
        let session = Session::new(supplier_database().unwrap());
        let corpus = repeated_corpus(40);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let report = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads: 0,
                degree: Some(Degree::Fixed(cores * 2)),
            },
        );
        assert_eq!(
            report.threads, 1,
            "degree ≥ cores leaves one batch worker, not cores"
        );
        assert_eq!(report.errors, 0, "{:?}", report.first_error);
    }
}
