//! Lower a bound query back to AST form, so rewrites can be printed as
//! SQL.
//!
//! Inverse of `uniq_plan::bind_query` up to cosmetic details: attribute
//! references become qualified column names (`S.SNO`), bindings that
//! differ from their base table's name become correlation names, and
//! aliases are emitted only where the output name differs from the column
//! name. Round-tripping `bind(unbind(q)) == q` is tested for every rewrite
//! the optimizer produces.

use uniq_plan::{AttrRef, BScalar, BoundExpr, BoundQuery, BoundSpec};
use uniq_sql::{Expr, Projection, QueryExpr, QuerySpec, Scalar, SelectItem, TableRef};
use uniq_types::{ColRef, Error, Result};

/// Lower a bound query to AST.
pub fn unbind_query(q: &BoundQuery) -> Result<QueryExpr> {
    let mut scopes: Vec<&BoundSpec> = Vec::new();
    unbind(q, &mut scopes)
}

fn unbind<'a>(q: &'a BoundQuery, scopes: &mut Vec<&'a BoundSpec>) -> Result<QueryExpr> {
    match q {
        BoundQuery::Spec(s) => Ok(QueryExpr::spec(unbind_spec(s, scopes)?)),
        BoundQuery::SetOp {
            op,
            all,
            left,
            right,
        } => Ok(QueryExpr::SetOp {
            op: *op,
            all: *all,
            left: Box::new(unbind(left, scopes)?),
            right: Box::new(unbind(right, scopes)?),
        }),
    }
}

fn unbind_spec<'a>(spec: &'a BoundSpec, scopes: &mut Vec<&'a BoundSpec>) -> Result<QuerySpec> {
    let from: Vec<TableRef> = spec
        .from
        .iter()
        .map(|t| TableRef {
            table: t.schema.name.clone(),
            alias: if t.binding == t.schema.name {
                None
            } else {
                Some(t.binding.clone())
            },
        })
        .collect();

    let projection = {
        let mut items = Vec::with_capacity(spec.projection.len());
        for p in &spec.projection {
            let col = attr_colref(spec, p.attr)?;
            let alias = if p.name == col.column {
                None
            } else {
                Some(p.name.clone())
            };
            items.push(SelectItem { col, alias });
        }
        Projection::Columns(items)
    };

    scopes.push(spec);
    let where_clause = match &spec.predicate {
        None => None,
        Some(p) => Some(unbind_expr(p, scopes)?),
    };
    scopes.pop();

    Ok(QuerySpec {
        distinct: spec.distinct,
        projection,
        from,
        where_clause,
    })
}

fn attr_colref(spec: &BoundSpec, idx: usize) -> Result<ColRef> {
    let (t, c) = spec
        .attr_owner(idx)
        .ok_or_else(|| Error::internal(format!("attribute #{idx} out of range")))?;
    Ok(ColRef::qualified(
        t.binding.clone(),
        t.schema.columns[c].name.clone(),
    ))
}

fn unbind_scalar(s: &BScalar, scopes: &[&BoundSpec]) -> Result<Scalar> {
    Ok(match s {
        BScalar::Literal(v) => Scalar::Literal(v.clone()),
        BScalar::HostVar(h) => Scalar::HostVar(h.clone()),
        BScalar::Attr(AttrRef { up, idx }) => {
            let spec = scopes
                .len()
                .checked_sub(1 + up)
                .and_then(|i| scopes.get(i))
                .ok_or_else(|| {
                    Error::internal(format!("attribute reference up={up} escapes scope"))
                })?;
            Scalar::Column(attr_colref(spec, *idx)?)
        }
    })
}

fn unbind_expr<'a>(e: &'a BoundExpr, scopes: &mut Vec<&'a BoundSpec>) -> Result<Expr> {
    Ok(match e {
        BoundExpr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: unbind_scalar(left, scopes)?,
            right: unbind_scalar(right, scopes)?,
        },
        BoundExpr::Between {
            scalar,
            low,
            high,
            negated,
        } => Expr::Between {
            scalar: unbind_scalar(scalar, scopes)?,
            low: unbind_scalar(low, scopes)?,
            high: unbind_scalar(high, scopes)?,
            negated: *negated,
        },
        BoundExpr::InList {
            scalar,
            list,
            negated,
        } => Expr::InList {
            scalar: unbind_scalar(scalar, scopes)?,
            list: list
                .iter()
                .map(|i| unbind_scalar(i, scopes))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        BoundExpr::IsNull { scalar, negated } => Expr::IsNull {
            scalar: unbind_scalar(scalar, scopes)?,
            negated: *negated,
        },
        BoundExpr::Exists { negated, subquery } => Expr::Exists {
            negated: *negated,
            subquery: Box::new(unbind_spec(subquery, scopes)?),
        },
        BoundExpr::InSubquery {
            scalar,
            subquery,
            negated,
        } => Expr::InSubquery {
            scalar: unbind_scalar(scalar, scopes)?,
            subquery: Box::new(unbind_spec(subquery, scopes)?),
            negated: *negated,
        },
        BoundExpr::And(a, b) => Expr::and(unbind_expr(a, scopes)?, unbind_expr(b, scopes)?),
        BoundExpr::Or(a, b) => Expr::or(unbind_expr(a, scopes)?, unbind_expr(b, scopes)?),
        BoundExpr::Not(a) => Expr::not(unbind_expr(a, scopes)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    /// bind → unbind → print → parse → bind must reproduce the bound form.
    fn roundtrip(sql: &str) {
        let db = supplier_schema().unwrap();
        let b1 = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let ast = unbind_query(&b1).unwrap();
        let printed = ast.to_string();
        let b2 = bind_query(
            db.catalog(),
            &parse_query(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}")),
        )
        .unwrap_or_else(|e| panic!("rebind {printed}: {e}"));
        assert_eq!(b1, b2, "round-trip diverged for {printed}");
    }

    #[test]
    fn roundtrips_paper_examples() {
        for sql in [
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
             WHERE S.SNAME = :SUPPLIER-NAME AND EXISTS \
             (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)",
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' INTERSECT \
             SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
            "SELECT DISTINCT S.SNO AS SUPPLIER-NUMBER, S.SNAME FROM SUPPLIER S",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn bare_table_name_gets_no_alias() {
        let db = supplier_schema().unwrap();
        let b = bind_query(
            db.catalog(),
            &parse_query("SELECT SUPPLIER.SNO FROM SUPPLIER").unwrap(),
        )
        .unwrap();
        let printed = unbind_query(&b).unwrap().to_string();
        assert!(
            !printed.contains("SUPPLIER SUPPLIER"),
            "spurious alias: {printed}"
        );
    }

    #[test]
    fn star_projection_unbinds_to_explicit_columns() {
        let db = supplier_schema().unwrap();
        let b = bind_query(
            db.catalog(),
            &parse_query("SELECT * FROM AGENTS A").unwrap(),
        )
        .unwrap();
        let printed = unbind_query(&b).unwrap().to_string();
        assert!(printed.contains("A.SNO"), "{printed}");
        assert!(printed.contains("A.ACITY"), "{printed}");
    }
}
