//! Functional-dependency-based uniqueness analysis.
//!
//! This is the production-strength sufficient test for Theorem 1. It
//! expresses Algorithm 1's reasoning as derived functional dependencies —
//! a base table's candidate keys become key dependencies, a Type-1
//! equality (`v = const`) surviving a false-interpreted `WHERE` makes `v`
//! constant (`∅ → v`), and a Type-2 equality (`v1 = v2`) makes the columns
//! mutually determining — and then asks the closure question directly:
//!
//! > does the projection list functionally determine a candidate key of
//! > every table in the product?
//!
//! Because key FDs ride along in the closure, this subsumes Algorithm 1
//! (anything V reaches, the closure reaches) and additionally handles the
//! cases the paper's line 10 gives up on (no usable predicate but keys in
//! the projection list) and transitive inferences *through* key
//! dependencies (e.g. binding a candidate key of a table makes the whole
//! table's attribute block constant, which can bind another table's key
//! via a join predicate).
//!
//! Only *top-level conjuncts* of the predicate contribute equalities: an
//! equality under `OR` does not hold for every qualifying row. Algorithm 1
//! (soundly implemented — see the erratum in [`mod@crate::algorithm1`])
//! discards disjunctive clauses for the same reason, so everything its set
//! `V` can reach, this closure reaches too; the FD test strictly subsumes
//! it. [`crate::pipeline::Optimizer`] still exposes both, so experiments
//! can compare the paper's algorithm against the closure-based test.
//!
//! The same machinery yields Theorem 2's *single-tuple condition* for a
//! correlated subquery block ([`single_tuple_condition`]): with correlated
//! (outer) references treated as constants — the outer row is fixed while
//! the subquery runs — the block matches at most one tuple iff the empty
//! set's closure covers a candidate key of every subquery table.

use uniq_fd::{AttrSet, FdSet};
use uniq_plan::norm::to_cnf;
use uniq_plan::{BScalar, BoundExpr, BoundSpec};
use uniq_sql::CmpOp;

/// Why a block was (or was not) found duplicate-free.
#[derive(Debug, Clone)]
pub struct UniquenessReport {
    /// The verdict: `true` means provably duplicate-free.
    pub unique: bool,
    /// Prose explanation (covered keys, or the first uncovered table).
    pub reason: String,
}

/// Build the derived FD set of a query block's selection over its
/// Cartesian product, from:
///
/// 1. every candidate key of every `FROM` table (key dependencies, valid
///    under `=̇` by SQL2's null-as-special-value rule);
/// 2. Type-1 equalities among the predicate's top-level conjuncts
///    (`∅ → v`);
/// 3. Type-2 equalities among them (`v1 ↔ v2`).
///
/// `treat_correlated_as_constant` additionally turns `local = outer` into
/// `∅ → local` — Theorem 2's view, where the block runs per outer row.
pub fn derived_fds(spec: &BoundSpec, treat_correlated_as_constant: bool) -> FdSet {
    let mut fds = FdSet::new(spec.product_arity());
    // 1. Key dependencies.
    for t in &spec.from {
        let all: Vec<usize> = t.attr_range().collect();
        for key in t.schema.candidate_keys() {
            let lhs: Vec<usize> = key.columns.iter().map(|&c| t.offset + c).collect();
            fds.add_fd(lhs, all.iter().copied());
        }
    }
    // 2/3. Predicate equalities from top-level conjuncts. A conjunct that
    // is itself a disjunction contributes nothing here (see module docs);
    // we take the CNF's singleton clauses, which captures conjuncts hidden
    // under double negation as well.
    if let Some(pred) = &spec.predicate {
        if let Some(cnf) = to_cnf(pred, 1024) {
            for clause in &cnf {
                if clause.len() != 1 {
                    continue;
                }
                add_equality_fds(&mut fds, &clause[0], treat_correlated_as_constant);
            }
        }
    }
    fds
}

fn add_equality_fds(fds: &mut FdSet, atom: &BoundExpr, correlated_const: bool) {
    let BoundExpr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = atom
    else {
        return;
    };
    let local = |s: &BScalar| match s {
        BScalar::Attr(a) if a.is_local() => Some(a.idx),
        _ => None,
    };
    let constant = |s: &BScalar| match s {
        BScalar::Literal(_) | BScalar::HostVar(_) => true,
        BScalar::Attr(a) => correlated_const && !a.is_local(),
    };
    match (local(left), local(right)) {
        (Some(a), Some(b)) => fds.add_equiv(a, b),
        (Some(a), None) if constant(right) => fds.add_constant(a),
        (None, Some(b)) if constant(left) => fds.add_constant(b),
        _ => {}
    }
}

/// The FD-based Theorem 1 test: is the block's projected result provably
/// duplicate-free?
///
/// Requires every `FROM` table to carry at least one candidate key (the
/// theorem's precondition), then checks that the closure of the projection
/// attributes covers some candidate key of every table.
pub fn unique_projection(spec: &BoundSpec) -> UniquenessReport {
    if spec.from.is_empty() {
        return UniquenessReport {
            unique: false,
            reason: "empty FROM clause".into(),
        };
    }
    for t in &spec.from {
        if !t.schema.has_key() {
            return UniquenessReport {
                unique: false,
                reason: format!("table {} has no candidate key", t.binding),
            };
        }
    }
    let fds = derived_fds(spec, false);
    let proj: AttrSet = spec.projection.iter().map(|p| p.attr).collect();
    let closure = fds.closure_of(&proj);
    key_cover_report(spec, &proj, &closure, "projection")
}

/// Theorem 2's single-tuple condition: evaluated per outer row (correlated
/// references fixed), does this subquery block match **at most one** tuple?
///
/// True iff the closure of the constants alone (`∅⁺`) covers a candidate
/// key of every table in the block.
pub fn single_tuple_condition(sub: &BoundSpec) -> UniquenessReport {
    if sub.from.is_empty() {
        return UniquenessReport {
            unique: false,
            reason: "empty FROM clause".into(),
        };
    }
    for t in &sub.from {
        if !t.schema.has_key() {
            return UniquenessReport {
                unique: false,
                reason: format!("table {} has no candidate key", t.binding),
            };
        }
    }
    let fds = derived_fds(sub, true);
    let seed = AttrSet::new();
    let closure = fds.closure_of(&seed);
    key_cover_report(sub, &seed, &closure, "correlation/constant bindings")
}

fn key_cover_report(
    spec: &BoundSpec,
    seed: &AttrSet,
    closure: &AttrSet,
    source: &str,
) -> UniquenessReport {
    let mut covered: Vec<String> = Vec::new();
    for t in &spec.from {
        // Prefer a covered key lying directly in the seed set (the most
        // direct evidence) over one reached only through closure steps.
        let in_set = |set: &AttrSet, k: &&uniq_catalog::Key| {
            k.columns.iter().all(|&c| set.contains(t.offset + c))
        };
        let key = t
            .schema
            .candidate_keys()
            .find(|k| in_set(seed, k))
            .or_else(|| t.schema.candidate_keys().find(|k| in_set(closure, k)));
        match key {
            Some(k) => {
                let cols: Vec<String> = k
                    .columns
                    .iter()
                    .map(|&c| t.schema.columns[c].name.to_string())
                    .collect();
                // Name the CREATE UNIQUE INDEX that supplied the key, so
                // the justification records the uniqueness source.
                let via = match t.schema.key_index_name(k) {
                    Some(ix) => format!(" [unique index {ix}]"),
                    None => String::new(),
                };
                covered.push(format!("{}({}){via}", t.binding, cols.join(", ")));
            }
            None => {
                return UniquenessReport {
                    unique: false,
                    reason: format!(
                        "no candidate key of {} is determined by the {source}",
                        t.binding
                    ),
                };
            }
        }
    }
    UniquenessReport {
        unique: true,
        reason: format!(
            "the {source} functionally determines candidate keys {}",
            covered.join(" and ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn spec_of(sql: &str) -> BoundSpec {
        let db = supplier_schema().unwrap();
        let bound = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        bound.as_spec().unwrap().clone()
    }

    #[test]
    fn example_1_unique() {
        let r = unique_projection(&spec_of(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        ));
        assert!(r.unique, "{}", r.reason);
    }

    #[test]
    fn example_2_not_unique() {
        let r = unique_projection(&spec_of(
            "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        ));
        assert!(!r.unique);
        assert!(r.reason.contains('S'), "{}", r.reason);
    }

    #[test]
    fn keys_in_projection_without_predicate() {
        // The case the paper's Algorithm 1 line 10 misses.
        let r = unique_projection(&spec_of("SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S"));
        assert!(r.unique, "{}", r.reason);
    }

    #[test]
    fn transitive_inference_through_key_dependency() {
        // Binding PARTS' candidate key OEM-PNO makes P.SNO constant (key
        // dependency), which via S.SNO = P.SNO binds SUPPLIER's key too —
        // a closure step Algorithm 1's V cannot take.
        let r = unique_projection(&spec_of(
            "SELECT DISTINCT P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.OEM-PNO = :OEM AND S.SNO = P.SNO",
        ));
        assert!(r.unique, "{}", r.reason);
    }

    #[test]
    fn unique_index_key_is_named_in_the_reason() {
        use uniq_sql::{parse_statement, Statement};
        let mut db = supplier_schema().unwrap();
        match parse_statement("CREATE UNIQUE INDEX IDX_SNAME ON SUPPLIER (SNAME)").unwrap() {
            Statement::CreateIndex(ci) => db.create_index(&ci).unwrap(),
            _ => unreachable!(),
        }
        let bound = bind_query(
            db.catalog(),
            &parse_query("SELECT DISTINCT S.SNAME FROM SUPPLIER S").unwrap(),
        )
        .unwrap();
        let r = unique_projection(bound.as_spec().unwrap());
        assert!(r.unique, "{}", r.reason);
        assert!(r.reason.contains("unique index IDX_SNAME"), "{}", r.reason);
    }

    #[test]
    fn equality_under_or_is_ignored() {
        let r = unique_projection(&spec_of(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S \
             WHERE S.SNO = 5 OR S.SNO = 10",
        ));
        assert!(!r.unique);
    }

    #[test]
    fn single_tuple_condition_example_7() {
        // Paper Example 7's subquery: S.SNO = P.SNO AND P.PNO = :PART-NO
        // pins the full PARTS key per outer row.
        let outer = spec_of(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
             WHERE S.SNAME = :SUPPLIER-NAME AND EXISTS \
             (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)",
        );
        let sub = match outer.predicate.as_ref().unwrap().conjuncts()[1] {
            BoundExpr::Exists { subquery, .. } => subquery.as_ref().clone(),
            other => panic!("expected EXISTS, got {other:?}"),
        };
        let r = single_tuple_condition(&sub);
        assert!(r.unique, "{}", r.reason);
    }

    #[test]
    fn single_tuple_condition_example_8_fails() {
        // Example 8's subquery: only COLOR = 'RED' — many red parts per
        // supplier, key not pinned.
        let outer = spec_of(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        );
        let sub = match outer.predicate.as_ref().unwrap() {
            BoundExpr::Exists { subquery, .. } => subquery.as_ref().clone(),
            other => panic!("expected EXISTS, got {other:?}"),
        };
        let r = single_tuple_condition(&sub);
        assert!(!r.unique);
    }

    #[test]
    fn heap_table_blocks_uniqueness() {
        let mut db = uniq_catalog::Database::new();
        db.run_script("CREATE TABLE HEAP (X INTEGER)").unwrap();
        let bound = bind_query(
            db.catalog(),
            &parse_query("SELECT DISTINCT X FROM HEAP WHERE X = 1").unwrap(),
        )
        .unwrap();
        let r = unique_projection(bound.as_spec().unwrap());
        assert!(!r.unique);
        assert!(r.reason.contains("no candidate key"));
    }

    #[test]
    fn example_3_pno_keys_the_derived_table() {
        // Paper Example 3: with P.SNO = :SUPPLIER-NO and S.SNO = P.SNO,
        // "PNO is a key of the derived table" — and SNO → SNAME becomes a
        // non-key FD there. Verify both through the derived FD set.
        let spec = spec_of(
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
        );
        let fds = derived_fds(&spec, false);
        // Attribute positions: S.SNO=0, S.SNAME=1, P.PNO=6, P.PNAME=7.
        let pno = uniq_fd::AttrSet::single(6);
        // P.PNO determines the entire product (it is a key of the derived
        // table): P.SNO is constant, (P.SNO,P.PNO) keys PARTS, S.SNO =
        // P.SNO keys SUPPLIER.
        assert!(
            fds.is_superkey(&pno),
            "PNO should key the derived table (closure: {:?})",
            fds.closure_of(&pno)
        );
        // The paper's other observation: SNO → SNAME holds (a key
        // dependency of SUPPLIER surviving as a derived FD).
        assert!(fds.implies(&uniq_fd::AttrSet::single(0), &uniq_fd::AttrSet::single(1)));
        // And without the host-variable restriction, PNO alone is NOT a
        // key of the product.
        let spec2 = spec_of(
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO",
        );
        let fds2 = derived_fds(&spec2, false);
        assert!(!fds2.is_superkey(&uniq_fd::AttrSet::single(6)));
    }

    #[test]
    fn report_names_covering_keys() {
        let r = unique_projection(&spec_of(
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        ));
        assert!(r.unique);
        assert!(r.reason.contains("SNO"), "{}", r.reason);
    }
}
