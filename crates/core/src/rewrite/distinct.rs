//! Rule 1 (§5.1): remove a redundant `DISTINCT`.
//!
//! A `SELECT DISTINCT` block whose result is provably duplicate-free
//! (Theorem 1) may drop duplicate elimination — and with it, typically, a
//! sort of the entire result. The rule consults both sufficient tests:
//! the paper's Algorithm 1 and the FD-closure test (see
//! [`crate::analysis`] for why they are incomparable); YES from either
//! suffices, since both are sound.

use crate::algorithm1::{algorithm1, Algorithm1Options};
use crate::analysis::unique_projection;
use crate::rules::{Justification, RewriteRule, RuleContext};
use uniq_plan::BoundSpec;
use uniq_sql::Distinct;

/// Which uniqueness test(s) a rewrite may consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniquenessTest {
    /// Only the paper's Algorithm 1.
    Algorithm1,
    /// Only the FD-closure test.
    FdClosure,
    /// Either may answer YES (the default: strictly strongest).
    Both,
}

/// Decide whether `spec`'s result is provably duplicate-free under the
/// chosen test(s); returns the justification on success.
pub fn is_provably_unique(spec: &BoundSpec, test: UniquenessTest) -> Option<String> {
    if matches!(test, UniquenessTest::FdClosure | UniquenessTest::Both) {
        let r = unique_projection(spec);
        if r.unique {
            return Some(r.reason);
        }
    }
    if matches!(test, UniquenessTest::Algorithm1 | UniquenessTest::Both) {
        let out = algorithm1(spec, &Algorithm1Options::default());
        if out.unique {
            return Some("Algorithm 1 answers YES".into());
        }
    }
    None
}

/// A per-`optimize` memo of uniqueness-test verdicts.
///
/// The fixpoint pipeline asks [`is_provably_unique`] about the same
/// block repeatedly: several rules consult it within one pass (a
/// Corollary 1 merge and a Theorem 1 `DISTINCT` removal both test the
/// outer block), and every pass after a rewrite re-asks about blocks
/// the rewrite left untouched. Algorithm 1's CNF→DNF conversion makes
/// each ask potentially exponential in the predicate, so the pipeline
/// records each `(block, test)` verdict and answers repeats from the
/// memo. Keys compare with full structural equality (`BoundSpec:
/// PartialEq`), so a memo hit is exact — never a hash gamble.
#[derive(Debug, Default)]
pub struct UniquenessMemo {
    entries: Vec<(BoundSpec, UniquenessTest, Option<String>)>,
    /// Verdicts computed by running the underlying test(s).
    pub computed: u64,
    /// Verdicts answered from the memo.
    pub reused: u64,
}

impl UniquenessMemo {
    /// An empty memo.
    pub fn new() -> UniquenessMemo {
        UniquenessMemo::default()
    }

    /// Memoized [`is_provably_unique`].
    pub fn is_provably_unique(&mut self, spec: &BoundSpec, test: UniquenessTest) -> Option<String> {
        if let Some((_, _, verdict)) = self
            .entries
            .iter()
            .find(|(s, t, _)| *t == test && s == spec)
        {
            self.reused += 1;
            return verdict.clone();
        }
        let verdict = is_provably_unique(spec, test);
        self.computed += 1;
        self.entries.push((spec.clone(), test, verdict.clone()));
        verdict
    }
}

/// Rule 1: remove the `DISTINCT` of a block when Theorem 1 proves it
/// redundant. The single code path is [`RewriteRule::apply_spec`];
/// [`remove_redundant_distinct`] is a thin shim over it.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistinctRemoval;

impl RewriteRule for DistinctRemoval {
    fn name(&self) -> &'static str {
        "distinct-removal"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 1"
    }

    fn apply_spec(
        &self,
        spec: &BoundSpec,
        cx: &mut RuleContext,
    ) -> Option<(BoundSpec, Justification)> {
        if spec.distinct != Distinct::Distinct {
            return None;
        }
        let reason = cx.is_provably_unique(spec)?;
        let mut rewritten = spec.clone();
        rewritten.distinct = Distinct::All;
        Some((
            rewritten,
            Justification::new(
                "Theorem 1",
                format!("DISTINCT is redundant (Theorem 1): {reason}"),
            ),
        ))
    }
}

/// Standalone form of [`DistinctRemoval`] (a shim over the one
/// context-taking code path, for callers outside the pipeline).
pub fn remove_redundant_distinct(
    spec: &BoundSpec,
    test: UniquenessTest,
) -> Option<(BoundSpec, String)> {
    let mut cx = RuleContext::new(test);
    DistinctRemoval
        .apply_spec(spec, &mut cx)
        .map(|(s, j)| (s, j.detail()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn spec_of(sql: &str) -> BoundSpec {
        let db = supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap())
            .unwrap()
            .as_spec()
            .unwrap()
            .clone()
    }

    #[test]
    fn removes_distinct_on_example_1() {
        let spec = spec_of(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        let (rw, why) = remove_redundant_distinct(&spec, UniquenessTest::Both).unwrap();
        assert_eq!(rw.distinct, Distinct::All);
        assert!(why.contains("Theorem 1"), "{why}");
    }

    #[test]
    fn keeps_distinct_on_example_2() {
        let spec = spec_of(
            "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        assert!(remove_redundant_distinct(&spec, UniquenessTest::Both).is_none());
    }

    #[test]
    fn no_op_on_select_all() {
        let spec = spec_of("SELECT ALL S.SNO FROM SUPPLIER S");
        assert!(remove_redundant_distinct(&spec, UniquenessTest::Both).is_none());
    }

    #[test]
    fn fd_test_catches_what_algorithm_1_misses() {
        // No predicate, keys projected: Algorithm 1's line 10 gives up,
        // the FD closure does not.
        let spec = spec_of("SELECT DISTINCT S.SNO, S.SCITY FROM SUPPLIER S");
        assert!(remove_redundant_distinct(&spec, UniquenessTest::Algorithm1).is_none());
        assert!(remove_redundant_distinct(&spec, UniquenessTest::FdClosure).is_some());
        assert!(remove_redundant_distinct(&spec, UniquenessTest::Both).is_some());
    }

    #[test]
    fn memo_reuses_verdicts_per_block_and_test() {
        let spec = spec_of("SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 1");
        let mut memo = UniquenessMemo::new();
        let fresh = memo.is_provably_unique(&spec, UniquenessTest::Both);
        let replay = memo.is_provably_unique(&spec, UniquenessTest::Both);
        assert_eq!(fresh, replay);
        assert_eq!((memo.computed, memo.reused), (1, 1));
        // A different test selection is a distinct memo entry.
        memo.is_provably_unique(&spec, UniquenessTest::FdClosure);
        assert_eq!(memo.computed, 2);
        // A different block is too.
        let other = spec_of("SELECT DISTINCT S.SNO FROM SUPPLIER S");
        memo.is_provably_unique(&other, UniquenessTest::Both);
        assert_eq!(memo.computed, 3);
    }

    #[test]
    fn fd_test_subsumes_algorithm_1_on_transitive_key_inference() {
        // Binding PARTS' candidate key OEM-PNO determines P.SNO through
        // the key dependency, which binds SUPPLIER's key via the join
        // predicate. Algorithm 1's V has no key dependencies to close
        // over, so only the FD test answers YES.
        let spec = spec_of(
            "SELECT DISTINCT P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.OEM-PNO = :OEM AND S.SNO = P.SNO",
        );
        assert!(remove_redundant_distinct(&spec, UniquenessTest::Algorithm1).is_none());
        assert!(remove_redundant_distinct(&spec, UniquenessTest::FdClosure).is_some());
    }
}
