//! Shared plumbing for rewrites that move predicates between query blocks.
//!
//! Moving an expression across block boundaries invalidates its
//! [`AttrRef`]s; [`map_attr_refs`] visits every reference with its *depth*
//! (how many subquery boundaries lie between the reference's position and
//! the expression's root), which is exactly the information each rewrite
//! needs to renumber correctly.

use uniq_plan::{AttrRef, BScalar, BoundExpr, BoundSpec, FromTable};
use uniq_types::TableName;

/// Visit every attribute reference in `e`, passing the nesting depth of
/// the reference relative to `e`'s own block (0 = same block; +1 inside
/// each `EXISTS`/`IN` subquery).
pub fn map_attr_refs(e: &mut BoundExpr, f: &mut impl FnMut(usize, &mut AttrRef)) {
    go(e, 0, f);
}

fn go(e: &mut BoundExpr, depth: usize, f: &mut impl FnMut(usize, &mut AttrRef)) {
    let scalar = |s: &mut BScalar, depth: usize, f: &mut dyn FnMut(usize, &mut AttrRef)| {
        if let BScalar::Attr(a) = s {
            f(depth, a);
        }
    };
    match e {
        BoundExpr::Cmp { left, right, .. } => {
            scalar(left, depth, f);
            scalar(right, depth, f);
        }
        BoundExpr::Between {
            scalar: s,
            low,
            high,
            ..
        } => {
            scalar(s, depth, f);
            scalar(low, depth, f);
            scalar(high, depth, f);
        }
        BoundExpr::InList {
            scalar: s, list, ..
        } => {
            scalar(s, depth, f);
            for item in list {
                scalar(item, depth, f);
            }
        }
        BoundExpr::IsNull { scalar: s, .. } => scalar(s, depth, f),
        BoundExpr::Exists { subquery, .. } => {
            if let Some(p) = &mut subquery.predicate {
                go(p, depth + 1, f);
            }
        }
        BoundExpr::InSubquery {
            scalar: s,
            subquery,
            ..
        } => {
            scalar(s, depth, f);
            if let Some(p) = &mut subquery.predicate {
                go(p, depth + 1, f);
            }
        }
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            go(a, depth, f);
            go(b, depth, f);
        }
        BoundExpr::Not(a) => go(a, depth, f),
    }
}

/// Renumber an expression lifted out of a merged subquery block.
///
/// The subquery sat directly inside the outer block; after the merge its
/// tables are appended to the outer `FROM` at attribute offset `offset`.
/// For a reference at depth `d` within the expression:
///
/// * `up == d`   — pointed at the subquery block → now the merged block,
///   same level, attributes relocated: `idx += offset`;
/// * `up == d+1` — pointed at the outer block → the merged block is one
///   level *closer*: `up -= 1`, `idx` unchanged;
/// * `up >  d+1` — pointed above both → one block vanished: `up -= 1`.
pub fn reindex_merged_subquery(e: &mut BoundExpr, offset: usize) {
    map_attr_refs(e, &mut |depth, a| {
        if a.up == depth {
            a.idx += offset;
        } else if a.up > depth {
            a.up -= 1;
        }
        // a.up < depth: local to a nested subquery, untouched.
    });
}

/// Renumber an expression pushed *down* from a block into a new subquery
/// holding the tables `range` (attribute positions `range.start ..
/// range.end` of the original block, relocated to start at 0 in the
/// subquery). References to other tables of the original block become
/// correlated (`up + 1`), with their indices shifted down by
/// `removed_before` — the width the extracted tables occupied *before*
/// position `idx` in the original block (0 for attributes left of the
/// extracted range).
pub fn reindex_pushed_down(e: &mut BoundExpr, range: std::ops::Range<usize>, removed_width: usize) {
    map_attr_refs(e, &mut |depth, a| {
        if a.up == depth {
            if range.contains(&a.idx) {
                // Now local to the new subquery block.
                a.idx -= range.start;
            } else {
                // Correlated reference to the shrunken outer block.
                a.up += 1;
                if a.idx >= range.end {
                    a.idx -= removed_width;
                }
            }
        } else if a.up > depth {
            // The moved expression gained one enclosing block (the new
            // subquery sits between it and everything above), so
            // references past the original block walk one level further.
            a.up += 1;
        }
    });
}

/// Renumber an expression that *stays* in a block from which the tables at
/// attribute `range` (width `removed_width`) were removed.
pub fn reindex_after_removal(
    e: &mut BoundExpr,
    range: std::ops::Range<usize>,
    removed_width: usize,
) {
    map_attr_refs(e, &mut |depth, a| {
        if a.up == depth && a.idx >= range.end {
            a.idx -= removed_width;
        }
    });
}

/// Append `extra` tables to `from`, renaming bindings on collision
/// (`P` → `P_2`, …) and assigning fresh offsets. Returns the attribute
/// offset where the appended tables start.
pub fn append_tables(from: &mut Vec<FromTable>, extra: Vec<FromTable>) -> usize {
    let offset: usize = from.iter().map(|t| t.schema.arity()).sum();
    let mut next_offset = offset;
    for mut t in extra {
        if from.iter().any(|o| o.binding == t.binding) {
            let mut n = 2usize;
            loop {
                let candidate = TableName::new(format!("{}_{}", t.binding, n));
                if !from.iter().any(|o| o.binding == candidate) {
                    t.binding = candidate;
                    break;
                }
                n += 1;
            }
        }
        t.offset = next_offset;
        next_offset += t.schema.arity();
        from.push(t);
    }
    offset
}

/// Rebuild a predicate from conjuncts, `None` when empty.
pub fn rebuild_predicate(conjuncts: Vec<BoundExpr>) -> Option<BoundExpr> {
    BoundExpr::conjoin(conjuncts)
}

/// Split a block's predicate into its top-level conjuncts (empty when no
/// predicate).
pub fn conjuncts_of(spec: &BoundSpec) -> Vec<BoundExpr> {
    match &spec.predicate {
        None => Vec::new(),
        Some(p) => p.conjuncts().into_iter().cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_sql::CmpOp;

    fn attr(up: usize, idx: usize) -> BScalar {
        BScalar::Attr(AttrRef { up, idx })
    }

    fn eq(l: BScalar, r: BScalar) -> BoundExpr {
        BoundExpr::Cmp {
            op: CmpOp::Eq,
            left: l,
            right: r,
        }
    }

    #[test]
    fn merge_reindex_moves_locals_and_drops_outer_level() {
        // Subquery predicate: local#0 = outer#3, merged at offset 5.
        let mut e = eq(attr(0, 0), attr(1, 3));
        reindex_merged_subquery(&mut e, 5);
        assert_eq!(e, eq(attr(0, 5), attr(0, 3)));
    }

    #[test]
    fn merge_reindex_handles_nested_subqueries() {
        // exists( local-of-inner#0 = ref-to-merged-block (up=1, idx=2)
        //         AND other = grand-outer (up=3, idx=7) )
        let inner_spec = BoundSpec {
            distinct: uniq_sql::Distinct::All,
            from: vec![],
            predicate: Some(BoundExpr::and(
                eq(attr(0, 0), attr(1, 2)),
                eq(attr(0, 0), attr(3, 7)),
            )),
            projection: vec![],
        };
        let mut e = BoundExpr::Exists {
            negated: false,
            subquery: Box::new(inner_spec),
        };
        reindex_merged_subquery(&mut e, 10);
        match e {
            BoundExpr::Exists { subquery, .. } => {
                let p = subquery.predicate.unwrap();
                // up=1 pointed at the merged block (depth 1): idx += 10.
                // up=3 pointed two above: up -= 1.
                assert_eq!(
                    p,
                    BoundExpr::and(eq(attr(0, 0), attr(1, 12)), eq(attr(0, 0), attr(2, 7)),)
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn pushdown_reindex_localizes_and_correlates() {
        // Block attrs: 0..5 stay, 5..9 extracted. Expression: #6 = #2.
        let mut e = eq(attr(0, 6), attr(0, 2));
        reindex_pushed_down(&mut e, 5..9, 4);
        assert_eq!(e, eq(attr(0, 1), attr(1, 2)));
    }

    #[test]
    fn removal_reindex_shifts_later_attrs() {
        // Tables at 2..4 removed; #5 becomes #3, #1 unchanged.
        let mut e = eq(attr(0, 5), attr(0, 1));
        reindex_after_removal(&mut e, 2..4, 2);
        assert_eq!(e, eq(attr(0, 3), attr(0, 1)));
    }

    #[test]
    fn append_tables_renames_collisions() {
        use uniq_catalog::sample::supplier_schema;
        let db = supplier_schema().unwrap();
        let schema = db.catalog().table(&"PARTS".into()).unwrap().clone();
        let mut from = vec![FromTable {
            binding: "P".into(),
            schema: schema.clone(),
            offset: 0,
        }];
        let offset = append_tables(
            &mut from,
            vec![FromTable {
                binding: "P".into(),
                schema,
                offset: 0,
            }],
        );
        assert_eq!(offset, 5);
        assert_eq!(from[1].binding.as_str(), "P_2");
        assert_eq!(from[1].offset, 5);
    }
}
