//! Rule 7: push a `DISTINCT` through a key-covered join.
//!
//! A `SELECT DISTINCT` block whose projection (plus derived FDs) covers
//! a candidate key of every *projected* table can demote an unprojected
//! table to an `EXISTS` semijoin **and** drop the `DISTINCT` outright:
//! the remaining block is duplicate-free by itself, and the semijoin
//! preserves exactly the support of the join. This is Corollary 1 read
//! right-to-left — and precisely because it is the inverse of the
//! [`SubqueryToJoin`](crate::rewrite::SubqueryToJoin) Corollary 1 case,
//! the two rules must never share a registry (see
//! [`OptimizerOptions::distinct_pushdown`](crate::pipeline::OptimizerOptions::distinct_pushdown)).
//!
//! Unlike every other rule, this one does not verify its own side
//! conditions: it *constructs* the candidate rewrite and fires only if
//! the U-semiring checker proves the before/after pair equivalent
//! ([`RuleContext::prove`]). The justification therefore always carries
//! a `Proved` status — an `Unknown` verdict suppresses the firing
//! entirely, so the rule can never put an unproved step in a trace.

use crate::rewrite::subquery::visit_subquery_refs;
use crate::rewrite::util::{
    conjuncts_of, rebuild_predicate, reindex_after_removal, reindex_pushed_down,
};
use crate::rules::{Justification, RewriteRule, RuleContext};
use uniq_plan::{BoundExpr, BoundQuery, BoundSpec, ProjItem};
use uniq_sql::Distinct;

/// Rule 7: proof-gated `DISTINCT` pushdown (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct DistinctPushdown;

impl RewriteRule for DistinctPushdown {
    fn name(&self) -> &'static str {
        "distinct-pushdown"
    }

    fn theorem(&self) -> &'static str {
        "Corollary 1 (inverse)"
    }

    fn apply_spec(
        &self,
        spec: &BoundSpec,
        cx: &mut RuleContext,
    ) -> Option<(BoundSpec, Justification)> {
        if spec.distinct != Distinct::Distinct || spec.from.len() < 2 {
            return None;
        }
        // Candidate victims: tables the projection never touches,
        // rightmost first (the lookup side of a typical join).
        'candidates: for victim in (0..spec.from.len()).rev() {
            let range = spec.from[victim].attr_range();
            if spec.projection.iter().any(|p| range.contains(&p.attr)) {
                continue;
            }
            let conjuncts = conjuncts_of(spec);
            let mut stay: Vec<BoundExpr> = Vec::new();
            let mut moved: Vec<BoundExpr> = Vec::new();
            for c in &conjuncts {
                let mut mentions = false;
                c.visit_local_attrs(&mut |a| {
                    if range.contains(&a) {
                        mentions = true;
                    }
                });
                // A nested subquery referencing the victim would need
                // its correlation re-rooted; skip this victim.
                let mut sub_mentions = false;
                visit_subquery_refs(c, &mut |below, up, idx| {
                    if up == below && range.contains(&idx) {
                        sub_mentions = true;
                    }
                });
                if sub_mentions {
                    continue 'candidates;
                }
                if mentions {
                    moved.push(c.clone());
                } else {
                    stay.push(c.clone());
                }
            }

            let removed_width = spec.from[victim].schema.arity();
            let mut sub_from = vec![spec.from[victim].clone()];
            sub_from[0].offset = 0;
            let mut sub_pred: Vec<BoundExpr> = Vec::new();
            for mut c in moved {
                reindex_pushed_down(&mut c, range.clone(), removed_width);
                sub_pred.push(c);
            }
            let sub = BoundSpec {
                distinct: Distinct::All,
                from: sub_from,
                predicate: rebuild_predicate(sub_pred),
                projection: spec.from[victim]
                    .schema
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| ProjItem {
                        attr: i,
                        name: c.name.clone(),
                    })
                    .collect(),
            };

            // The candidate: victim demoted to EXISTS, DISTINCT elided.
            let mut outer = spec.clone();
            outer.distinct = Distinct::All;
            outer.from.remove(victim);
            for t in outer.from.iter_mut() {
                if t.offset >= range.end {
                    t.offset -= removed_width;
                }
            }
            for p in outer.projection.iter_mut() {
                if p.attr >= range.end {
                    p.attr -= removed_width;
                }
            }
            let mut new_conjuncts: Vec<BoundExpr> = Vec::new();
            for mut c in stay {
                reindex_after_removal(&mut c, range.clone(), removed_width);
                new_conjuncts.push(c);
            }
            new_conjuncts.push(BoundExpr::Exists {
                negated: false,
                subquery: Box::new(sub),
            });
            outer.predicate = rebuild_predicate(new_conjuncts);

            // Fire only on a proof. The checker re-derives the side
            // condition (remaining projection covers a key of every
            // kept table) from its own axioms — the rule asserts
            // nothing the checker has not verified.
            let status = cx.prove(
                &BoundQuery::Spec(Box::new(spec.clone())),
                &BoundQuery::Spec(Box::new(outer.clone())),
            );
            if !status.is_proved() {
                continue;
            }
            let why = format!(
                "DISTINCT pushed through key-covered join: {} demoted to EXISTS semijoin, \
                 duplicate elimination elided ({status})",
                spec.from[victim].binding
            );
            return Some((
                outer,
                Justification::new("Corollary 1 (inverse)", why).with_proof(status),
            ));
        }
        None
    }
}

/// Standalone form of [`DistinctPushdown`] (a shim over the one
/// context-taking code path, for callers outside the pipeline).
pub fn push_down_distinct(spec: &BoundSpec) -> Option<(BoundSpec, String)> {
    let mut cx = RuleContext::new(crate::rewrite::distinct::UniquenessTest::Both);
    DistinctPushdown
        .apply_spec(spec, &mut cx)
        .map(|(s, j)| (s, j.detail()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn spec_of(sql: &str) -> BoundSpec {
        let db = supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap())
            .unwrap()
            .as_spec()
            .unwrap()
            .clone()
    }

    #[test]
    fn pushes_distinct_when_remaining_projection_covers_keys() {
        let spec =
            spec_of("SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
        let (rw, why) = push_down_distinct(&spec).unwrap();
        assert_eq!(rw.distinct, Distinct::All, "DISTINCT must be elided");
        assert_eq!(rw.from.len(), 1);
        assert!(
            matches!(
                rw.predicate.as_ref().unwrap().conjuncts().as_slice(),
                [BoundExpr::Exists { negated: false, .. }]
            ),
            "{rw:?}"
        );
        assert!(why.contains("proved"), "{why}");
    }

    #[test]
    fn refuses_without_a_proof() {
        // SCITY covers no key of SUPPLIER: eliding the DISTINCT would
        // reintroduce duplicates. The checker returns Unknown, so the
        // rule must not fire.
        let spec = spec_of("SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
        assert!(push_down_distinct(&spec).is_none());
    }

    #[test]
    fn refuses_when_every_table_is_projected() {
        let spec =
            spec_of("SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
        assert!(push_down_distinct(&spec).is_none());
    }
}
