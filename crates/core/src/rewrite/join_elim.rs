//! Rule 6 (paper §7 future work): join elimination via inclusion
//! dependencies.
//!
//! The paper's concluding remarks propose "utilizing inclusion
//! dependencies to prune query graphs, thus implementing King's notion of
//! join elimination". This rule does exactly that for declared foreign
//! keys: in
//!
//! ```sql
//! SELECT P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO
//! ```
//!
//! the join contributes nothing — `PARTS.SNO` is a `NOT NULL` foreign key
//! referencing candidate key `SUPPLIER.SNO`, so *every* `PARTS` row
//! matches **exactly one** `SUPPLIER` row: the join neither drops rows
//! (no `NULL`/dangling references) nor multiplies them (the parent side
//! is a key). The parent table and the join conjuncts can be deleted.
//!
//! Preconditions checked before firing, for parent table `T` joined to
//! child `C`:
//!
//! 1. the projection references no attribute of `T`;
//! 2. every predicate conjunct mentioning `T` (including through
//!    correlated subqueries — then we bail) is an equality
//!    `T.pk_i = C.fk_i`, and those equalities cover the foreign key's
//!    column pairs *exactly* (extra equalities against `T` would
//!    constrain the result and must block the rule);
//! 3. `C` declares a foreign key on exactly those columns referencing a
//!    candidate key of `T` on exactly those parent columns;
//! 4. every referencing column of `C` is declared `NOT NULL` (a nullable
//!    reference row would be dropped by the join but kept after
//!    elimination).

use crate::rewrite::util::{conjuncts_of, rebuild_predicate, reindex_after_removal};
use crate::rules::{Justification, RewriteRule, RuleContext};
use uniq_plan::{BScalar, BoundExpr, BoundSpec};
use uniq_sql::CmpOp;

/// Rule 6: remove one provably-redundant parent table from the block's
/// join. The single code path is [`RewriteRule::apply_spec`];
/// [`eliminate_join`] is a thin shim over it.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinElimination;

impl RewriteRule for JoinElimination {
    fn name(&self) -> &'static str {
        "join-elimination"
    }

    fn theorem(&self) -> &'static str {
        "§7 (inclusion dependency)"
    }

    fn apply_spec(
        &self,
        spec: &BoundSpec,
        _cx: &mut RuleContext,
    ) -> Option<(BoundSpec, Justification)> {
        eliminate_join_impl(spec)
    }
}

/// Standalone form of [`JoinElimination`] (a shim over the one
/// context-taking code path, for callers outside the pipeline).
pub fn eliminate_join(spec: &BoundSpec) -> Option<(BoundSpec, String)> {
    eliminate_join_impl(spec).map(|(s, j)| (s, j.detail()))
}

fn eliminate_join_impl(spec: &BoundSpec) -> Option<(BoundSpec, Justification)> {
    if spec.from.len() < 2 {
        return None;
    }
    'parents: for parent_idx in 0..spec.from.len() {
        let parent = &spec.from[parent_idx];
        let parent_range = parent.attr_range();
        // 1. Projection must not use the parent.
        if spec
            .projection
            .iter()
            .any(|p| parent_range.contains(&p.attr))
        {
            continue;
        }

        // 2. Partition conjuncts; collect the equality pairs on T.
        let conjuncts = conjuncts_of(spec);
        let mut join_pairs: Vec<(usize, usize)> = Vec::new(); // (parent col, child attr)
        let mut kept: Vec<BoundExpr> = Vec::new();
        for c in &conjuncts {
            let mut mentions = false;
            c.visit_local_attrs(&mut |a| {
                if parent_range.contains(&a) {
                    mentions = true;
                }
            });
            // A subquery referencing the parent blocks elimination.
            let mut sub_mentions = false;
            visit_subquery_local_refs(c, &mut |idx| {
                if parent_range.contains(&idx) {
                    sub_mentions = true;
                }
            });
            if sub_mentions {
                continue 'parents;
            }
            if !mentions {
                kept.push(c.clone());
                continue;
            }
            // Must be a plain local equality T.col = other.col.
            let BoundExpr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } = c
            else {
                continue 'parents;
            };
            let (BScalar::Attr(a), BScalar::Attr(b)) = (left, right) else {
                continue 'parents;
            };
            if !a.is_local() || !b.is_local() {
                continue 'parents;
            }
            let (t_attr, o_attr) =
                if parent_range.contains(&a.idx) && !parent_range.contains(&b.idx) {
                    (a.idx, b.idx)
                } else if parent_range.contains(&b.idx) && !parent_range.contains(&a.idx) {
                    (b.idx, a.idx)
                } else {
                    // T = T or T = constant — constrains the parent.
                    continue 'parents;
                };
            let pair = (t_attr - parent_range.start, o_attr);
            if !join_pairs.contains(&pair) {
                join_pairs.push(pair);
            }
        }
        if join_pairs.is_empty() {
            continue;
        }

        // All pairs must target one child table.
        let (child, _) = spec.attr_owner(join_pairs[0].1)?;
        let child_range = child.attr_range();
        if !join_pairs.iter().all(|(_, o)| child_range.contains(o)) {
            continue;
        }

        // 3. Find a foreign key of the child matching the pairs exactly.
        let fk = child.schema.foreign_keys().find(|fk| {
            if fk.parent != parent.schema.name || fk.columns.len() != join_pairs.len() {
                return false;
            }
            fk.columns.iter().zip(&fk.parent_columns).all(|(&cc, pc)| {
                let Ok(pp) = parent.schema.column_position(pc) else {
                    return false;
                };
                join_pairs.contains(&(pp, child_range.start + cc))
            })
        })?;

        // FK must reference a candidate key of the parent (enforced at
        // DDL time; re-checked here because schemas travel by value).
        let mut parent_positions: Vec<usize> = fk
            .parent_columns
            .iter()
            .filter_map(|c| parent.schema.column_position(c).ok())
            .collect();
        parent_positions.sort_unstable();
        if !parent
            .schema
            .candidate_keys()
            .any(|k| k.columns == parent_positions)
        {
            continue;
        }

        // 4. Referencing columns must be NOT NULL.
        if fk.columns.iter().any(|&c| child.schema.columns[c].nullable) {
            continue;
        }

        // Fire: drop the parent table and the join conjuncts.
        let removed_width = parent.schema.arity();
        let why = Justification::new(
            "§7 (inclusion dependency)",
            format!(
                "join elimination (§7, inclusion dependency): every {} row references \
                 exactly one {} row through its NOT NULL foreign key, so the join \
                 neither filters nor multiplies",
                child.binding, parent.binding
            ),
        );
        let mut out = spec.clone();
        out.from.remove(parent_idx);
        for t in out.from.iter_mut() {
            if t.offset >= parent_range.end {
                t.offset -= removed_width;
            }
        }
        for p in out.projection.iter_mut() {
            if p.attr >= parent_range.end {
                p.attr -= removed_width;
            }
        }
        let mut new_conjuncts = Vec::with_capacity(kept.len());
        for mut c in kept {
            reindex_after_removal(&mut c, parent_range.clone(), removed_width);
            new_conjuncts.push(c);
        }
        out.predicate = rebuild_predicate(new_conjuncts);
        return Some((out, why));
    }
    None
}

/// Visit local-attr references that sit *inside subqueries* of `e` but
/// point back at `e`'s own block.
fn visit_subquery_local_refs(e: &BoundExpr, f: &mut impl FnMut(usize)) {
    match e {
        BoundExpr::Exists { subquery, .. } | BoundExpr::InSubquery { subquery, .. } => {
            if let Some(p) = &subquery.predicate {
                let mut clone = p.clone();
                crate::rewrite::util::map_attr_refs(&mut clone, &mut |d, a| {
                    if a.up == d + 1 {
                        f(a.idx);
                    }
                });
            }
        }
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            visit_subquery_local_refs(a, f);
            visit_subquery_local_refs(b, f);
        }
        BoundExpr::Not(a) => visit_subquery_local_refs(a, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn spec_of(sql: &str) -> BoundSpec {
        let db = supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap())
            .unwrap()
            .as_spec()
            .unwrap()
            .clone()
    }

    #[test]
    fn eliminates_fk_parent_join() {
        let spec =
            spec_of("SELECT ALL P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
        let (out, why) = eliminate_join(&spec).unwrap();
        assert!(why.contains("join elimination"), "{why}");
        assert_eq!(out.from.len(), 1);
        assert_eq!(out.from[0].binding.as_str(), "P");
        assert_eq!(out.from[0].offset, 0);
        assert!(out.predicate.is_none());
        // Projection reindexed: P.PNO was attr 6, now 1.
        assert_eq!(out.projection[0].attr, 1);
    }

    #[test]
    fn parent_in_projection_blocks() {
        let spec =
            spec_of("SELECT ALL S.SNAME, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
        assert!(eliminate_join(&spec).is_none());
    }

    #[test]
    fn extra_parent_restriction_blocks() {
        let spec = spec_of(
            "SELECT ALL P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND S.SCITY = 'Toronto'",
        );
        assert!(eliminate_join(&spec).is_none());
    }

    #[test]
    fn non_fk_join_columns_block() {
        // Joining on a non-FK pair (SNAME vs PNAME) must not fire.
        let spec = spec_of("SELECT ALL P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNAME = P.PNAME");
        assert!(eliminate_join(&spec).is_none());
    }

    #[test]
    fn child_filters_do_not_block() {
        let spec = spec_of(
            "SELECT ALL P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        let (out, _) = eliminate_join(&spec).unwrap();
        assert_eq!(out.from.len(), 1);
        // COLOR filter survives, reindexed.
        let atoms = out.predicate.as_ref().unwrap().conjuncts();
        assert_eq!(atoms.len(), 1);
    }

    #[test]
    fn nullable_fk_blocks() {
        let mut db = uniq_catalog::Database::new();
        db.run_script(
            "CREATE TABLE PT (K INTEGER, PRIMARY KEY (K));
             CREATE TABLE CT (C INTEGER, R INTEGER, PRIMARY KEY (C),
               FOREIGN KEY (R) REFERENCES PT (K));",
        )
        .unwrap();
        // R is nullable: rows with R = NULL are dropped by the join but
        // kept after elimination → must not fire.
        let bound = bind_query(
            db.catalog(),
            &parse_query("SELECT ALL CT.C FROM PT, CT WHERE PT.K = CT.R").unwrap(),
        )
        .unwrap();
        assert!(eliminate_join(bound.as_spec().unwrap()).is_none());
    }

    #[test]
    fn subquery_reference_to_parent_blocks() {
        let spec = spec_of(
            "SELECT ALL P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND EXISTS \
             (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO)",
        );
        assert!(eliminate_join(&spec).is_none());
    }

    #[test]
    fn agents_parent_also_eliminable() {
        let spec = spec_of("SELECT ALL A.ANAME FROM SUPPLIER S, AGENTS A WHERE A.SNO = S.SNO");
        let (out, _) = eliminate_join(&spec).unwrap();
        assert_eq!(out.from[0].binding.as_str(), "A");
    }

    #[test]
    fn no_join_predicate_no_elimination() {
        // A pure Cartesian product multiplies rows — never eliminable.
        let spec = spec_of("SELECT ALL P.PNO FROM SUPPLIER S, PARTS P");
        assert!(eliminate_join(&spec).is_none());
    }
}
