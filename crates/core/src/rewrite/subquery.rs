//! Rules 2 and 5: subquery → join (§5.2, Theorem 2 / Corollary 1) and
//! join → subquery (§6, for navigational back-ends).
//!
//! **Subquery → join.** A positive existential subquery block can be
//! merged into the outer block's Cartesian product when any of:
//!
//! 1. *(Theorem 2)* the subquery matches at most one tuple per outer row —
//!    the [`crate::analysis::single_tuple_condition`]; projection
//!    multiplicity is then unchanged;
//! 2. the outer block already eliminates duplicates (`SELECT DISTINCT`) —
//!    extra matches collapse in the projection (the observation before
//!    Corollary 1);
//! 3. *(Corollary 1)* the outer `SELECT ALL` block is provably
//!    duplicate-free by itself — then its projection may be switched to
//!    `DISTINCT` without changing semantics, reducing to case 2 (paper
//!    Example 8).
//!
//! **Join → subquery.** The inverse: a table that contributes nothing to
//! the projection can be pushed into an `EXISTS` subquery when either the
//! single-tuple condition holds for it (Theorem 2 read right-to-left) or
//! the outer projection is `DISTINCT`. On IMS and pointer-based OODBs a
//! nested-loop `EXISTS` that stops at the first match is often the better
//! plan (paper Examples 10 and 11).

use crate::analysis::single_tuple_condition;
use crate::rewrite::distinct::UniquenessTest;
use crate::rewrite::util::{
    append_tables, conjuncts_of, rebuild_predicate, reindex_after_removal, reindex_merged_subquery,
    reindex_pushed_down,
};
use crate::rules::{Justification, RewriteRule, RuleContext};
use uniq_plan::{BoundExpr, BoundSpec};
use uniq_sql::Distinct;

/// Rule 2: merge the first eligible positive `EXISTS` subquery of a
/// block into its `FROM` clause. The single code path is
/// [`RewriteRule::apply_spec`]; [`subquery_to_join`] is a thin shim over
/// it.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubqueryToJoin;

impl RewriteRule for SubqueryToJoin {
    fn name(&self) -> &'static str {
        "subquery-to-join"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 2 / Corollary 1"
    }

    fn apply_spec(
        &self,
        spec: &BoundSpec,
        cx: &mut RuleContext,
    ) -> Option<(BoundSpec, Justification)> {
        let conjuncts = conjuncts_of(spec);
        for (i, conjunct) in conjuncts.iter().enumerate() {
            let BoundExpr::Exists {
                negated: false,
                subquery,
            } = conjunct
            else {
                continue;
            };
            // Decide which of the three licenses applies.
            let single = single_tuple_condition(subquery);
            let (result_distinct, theorem, why) = if single.unique {
                (
                    spec.distinct,
                    "Theorem 2",
                    format!(
                        "Theorem 2 (subquery matches at most one tuple: {})",
                        single.reason
                    ),
                )
            } else if spec.distinct == Distinct::Distinct {
                (
                    Distinct::Distinct,
                    "Corollary 1 (observation)",
                    "outer projection is DISTINCT; extra join matches collapse".to_string(),
                )
            } else if let Some(reason) = cx.is_provably_unique(spec) {
                (
                    Distinct::Distinct,
                    "Corollary 1",
                    format!(
                        "Corollary 1 (outer block is duplicate-free — {reason} — so its \
                         projection may become DISTINCT)"
                    ),
                )
            } else {
                continue;
            };

            let mut merged = spec.clone();
            merged.distinct = result_distinct;
            // Append the subquery's tables to the outer product.
            let offset = append_tables(&mut merged.from, subquery.from.clone());
            // Hoist the subquery predicate, renumbering its references.
            let mut hoisted: Vec<BoundExpr> = Vec::new();
            if let Some(p) = &subquery.predicate {
                let mut p = p.clone();
                reindex_merged_subquery(&mut p, offset);
                hoisted.push(p);
            }
            // Remaining outer conjuncts keep their positions.
            let mut new_conjuncts: Vec<BoundExpr> = conjuncts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone())
                .collect();
            new_conjuncts.extend(hoisted);
            merged.predicate = rebuild_predicate(new_conjuncts);
            return Some((
                merged,
                Justification::new(theorem, format!("EXISTS subquery merged into join: {why}")),
            ));
        }
        None
    }
}

/// Standalone form of [`SubqueryToJoin`] (a shim over the one
/// context-taking code path, for callers outside the pipeline).
pub fn subquery_to_join(spec: &BoundSpec, test: UniquenessTest) -> Option<(BoundSpec, String)> {
    let mut cx = RuleContext::new(test);
    SubqueryToJoin
        .apply_spec(spec, &mut cx)
        .map(|(s, j)| (s, j.detail()))
}

/// Rule 5: push the last `FROM` table that contributes nothing to the
/// projection into an `EXISTS` subquery (the §6 rewrite for navigational
/// systems). The single code path is [`RewriteRule::apply_spec`];
/// [`join_to_subquery`] is a thin shim over it.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinToSubquery;

impl RewriteRule for JoinToSubquery {
    fn name(&self) -> &'static str {
        "join-to-subquery"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 2 (§6, read right-to-left)"
    }

    fn apply_spec(
        &self,
        spec: &BoundSpec,
        _cx: &mut RuleContext,
    ) -> Option<(BoundSpec, Justification)> {
        join_to_subquery_impl(spec)
    }
}

/// Standalone form of [`JoinToSubquery`] (a shim over the one
/// context-taking code path, for callers outside the pipeline).
pub fn join_to_subquery(spec: &BoundSpec) -> Option<(BoundSpec, String)> {
    join_to_subquery_impl(spec).map(|(s, j)| (s, j.detail()))
}

fn join_to_subquery_impl(spec: &BoundSpec) -> Option<(BoundSpec, Justification)> {
    if spec.from.len() < 2 {
        return None;
    }
    // Candidate tables: not referenced by the projection. Scan from the
    // right so the "lookup" table of a typical join goes inner.
    'candidates: for victim in (0..spec.from.len()).rev() {
        let range = spec.from[victim].attr_range();
        if spec.projection.iter().any(|p| range.contains(&p.attr)) {
            continue;
        }
        // Partition conjuncts: those mentioning the victim move into the
        // subquery, the rest stay.
        let conjuncts = conjuncts_of(spec);
        let mut stay: Vec<BoundExpr> = Vec::new();
        let mut moved: Vec<BoundExpr> = Vec::new();
        for c in &conjuncts {
            let mut mentions = false;
            c.visit_local_attrs(&mut |a| {
                if range.contains(&a) {
                    mentions = true;
                }
            });
            // An EXISTS/IN subquery conjunct may reference the victim from
            // inside; moving it would require re-rooting its correlation,
            // so bail out on this victim if one does.
            let mut sub_mentions = false;
            visit_subquery_refs(c, &mut |below, up, idx| {
                if up == below && range.contains(&idx) {
                    sub_mentions = true;
                }
            });
            if sub_mentions && !mentions {
                continue 'candidates;
            }
            if mentions {
                moved.push(c.clone());
            } else {
                stay.push(c.clone());
            }
        }

        let removed_width = spec.from[victim].schema.arity();
        // Build the subquery block around the victim table.
        let mut sub_from = vec![spec.from[victim].clone()];
        sub_from[0].offset = 0;
        let mut sub_pred: Vec<BoundExpr> = Vec::new();
        for mut c in moved {
            reindex_pushed_down(&mut c, range.clone(), removed_width);
            sub_pred.push(c);
        }
        let sub = BoundSpec {
            distinct: Distinct::All,
            from: sub_from,
            predicate: rebuild_predicate(sub_pred),
            projection: spec.from[victim]
                .schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| uniq_plan::ProjItem {
                    attr: i,
                    name: c.name.clone(),
                })
                .collect(),
        };

        // License: Theorem 2 backwards (single-tuple), or DISTINCT outer.
        let single = single_tuple_condition(&sub);
        let why = if single.unique {
            Justification::new(
                "Theorem 2",
                format!(
                    "join converted to EXISTS subquery (Theorem 2: {})",
                    single.reason
                ),
            )
        } else if spec.distinct == Distinct::Distinct {
            Justification::new(
                "§6 (DISTINCT outer)",
                "join converted to EXISTS subquery (outer is DISTINCT; \
                 multiplicity is irrelevant)",
            )
        } else {
            // A duplicate-free join result is NOT a license here: it says
            // nothing about how many S-tuples joined each outer row, and
            // under ALL semantics dropping those copies changes the result.
            continue;
        };

        // Rebuild the outer block without the victim.
        let mut outer = spec.clone();
        outer.from.remove(victim);
        for t in outer.from.iter_mut() {
            if t.offset >= range.end {
                t.offset -= removed_width;
            }
        }
        for p in outer.projection.iter_mut() {
            if p.attr >= range.end {
                p.attr -= removed_width;
            }
        }
        let mut new_conjuncts: Vec<BoundExpr> = Vec::new();
        for mut c in stay {
            reindex_after_removal(&mut c, range.clone(), removed_width);
            new_conjuncts.push(c);
        }
        new_conjuncts.push(BoundExpr::Exists {
            negated: false,
            subquery: Box::new(sub),
        });
        outer.predicate = rebuild_predicate(new_conjuncts);
        return Some((outer, why));
    }
    None
}

/// Visit attribute references *inside subqueries* of `e`, reporting
/// `(below, up, idx)` where `below` is how many block boundaries separate
/// the reference from `e`'s own block — so `up == below` means the
/// reference points at `e`'s block.
pub(crate) fn visit_subquery_refs(e: &BoundExpr, f: &mut impl FnMut(usize, usize, usize)) {
    match e {
        BoundExpr::Exists { subquery, .. } | BoundExpr::InSubquery { subquery, .. } => {
            if let Some(p) = &subquery.predicate {
                let mut clone = p.clone();
                crate::rewrite::util::map_attr_refs(&mut clone, &mut |d, a| {
                    f(d + 1, a.up, a.idx);
                });
            }
        }
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            visit_subquery_refs(a, f);
            visit_subquery_refs(b, f);
        }
        BoundExpr::Not(a) => visit_subquery_refs(a, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn spec_of(sql: &str) -> BoundSpec {
        let db = supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap())
            .unwrap()
            .as_spec()
            .unwrap()
            .clone()
    }

    #[test]
    fn example_7_theorem_2_merge() {
        // Subquery pins PARTS' full key → merge without DISTINCT.
        let spec = spec_of(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
             WHERE S.SNAME = :SUPPLIER-NAME AND EXISTS \
             (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)",
        );
        let (merged, why) = subquery_to_join(&spec, UniquenessTest::Both).unwrap();
        assert!(why.contains("Theorem 2"), "{why}");
        assert_eq!(merged.distinct, Distinct::All);
        assert_eq!(merged.from.len(), 2);
        assert_eq!(merged.from[1].binding.as_str(), "P");
        assert_eq!(merged.from[1].offset, 5);
        // Hoisted predicate: S.SNO = P.SNO becomes #0 = #5.
        let pred = merged.predicate.as_ref().unwrap();
        let atoms = pred.conjuncts();
        assert_eq!(atoms.len(), 3); // SNAME = :h, S.SNO = P.SNO, P.PNO = :p
    }

    #[test]
    fn example_8_corollary_1_merge_adds_distinct() {
        // Subquery does NOT pin a key (many red parts per supplier), but
        // the outer block projects SUPPLIER's key → Corollary 1.
        let spec = spec_of(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        );
        let (merged, why) = subquery_to_join(&spec, UniquenessTest::Both).unwrap();
        assert!(why.contains("Corollary 1"), "{why}");
        assert_eq!(merged.distinct, Distinct::Distinct);
        assert_eq!(merged.from.len(), 2);
    }

    #[test]
    fn no_merge_when_duplicates_would_appear() {
        // Outer projects a non-key and is ALL; subquery unbounded → the
        // merge would change multiplicities.
        let spec = spec_of(
            "SELECT ALL S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        );
        assert!(subquery_to_join(&spec, UniquenessTest::Both).is_none());
    }

    #[test]
    fn distinct_outer_always_merges() {
        let spec = spec_of(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        );
        let (merged, why) = subquery_to_join(&spec, UniquenessTest::Both).unwrap();
        assert!(why.contains("DISTINCT"), "{why}");
        assert_eq!(merged.distinct, Distinct::Distinct);
    }

    #[test]
    fn not_exists_is_never_merged() {
        let spec = spec_of(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = :X)",
        );
        assert!(subquery_to_join(&spec, UniquenessTest::Both).is_none());
    }

    #[test]
    fn binding_collision_renames() {
        let spec = spec_of(
            "SELECT ALL P.PNO FROM PARTS P WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = 1 AND P.PNO = 2)",
        );
        // Inner block's P shadows outer P; subquery pins PARTS key → merge.
        let (merged, _) = subquery_to_join(&spec, UniquenessTest::Both).unwrap();
        assert_eq!(merged.from[1].binding.as_str(), "P_2");
    }

    #[test]
    fn example_10_join_to_subquery() {
        // Paper Example 10: join on key + PNO pinned → nested form.
        let spec = spec_of(
            "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
             FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
        );
        let (rw, why) = join_to_subquery(&spec).unwrap();
        assert!(why.contains("Theorem 2"), "{why}");
        assert_eq!(rw.from.len(), 1);
        let pred = rw.predicate.as_ref().unwrap();
        let exists = pred
            .conjuncts()
            .into_iter()
            .find(|c| matches!(c, BoundExpr::Exists { .. }))
            .expect("an EXISTS conjunct");
        match exists {
            BoundExpr::Exists { subquery, .. } => {
                assert_eq!(subquery.from[0].binding.as_str(), "P");
                // Correlation: S.SNO (outer #0) = P.SNO (local #0).
                let atoms = subquery.predicate.as_ref().unwrap().conjuncts();
                assert_eq!(atoms.len(), 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn join_to_subquery_requires_license() {
        // ALL outer, non-single-tuple inner: pushing PARTS down would drop
        // duplicate SNAME rows.
        let spec = spec_of(
            "SELECT ALL S.SNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        assert!(join_to_subquery(&spec).is_none());
    }

    #[test]
    fn join_to_subquery_with_distinct_outer() {
        let spec = spec_of(
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        let (rw, _) = join_to_subquery(&spec).unwrap();
        assert_eq!(rw.from.len(), 1);
        assert_eq!(rw.distinct, Distinct::Distinct);
    }

    #[test]
    fn projected_table_is_not_pushed_down() {
        let spec = spec_of(
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO",
        );
        assert!(join_to_subquery(&spec).is_none());
    }
}
