//! The semantic rewrites of paper §5 and §6.
//!
//! Each rule is a [`crate::rules::RewriteRule`]: a pure transformation
//! from a bound query (or block) to an optional rewritten form plus a
//! [`crate::rules::Justification`] naming the theorem that licenses it.
//! Rules never fire unless their theorem's side conditions are verified
//! by [`crate::analysis`], so every rewrite is semantics-preserving — a
//! property the integration suite re-checks by executing original and
//! rewritten queries on randomized instances.
//!
//! Each module also exports a standalone free function (the historical
//! API: `remove_redundant_distinct`, `subquery_to_join`, …). These are
//! thin shims over the rule structs — there is exactly one code path per
//! rule, the context-taking `RewriteRule` implementation.

pub mod distinct;
pub mod join_elim;
pub mod pushdown;
pub mod setops;
pub mod subquery;
pub mod util;

pub use distinct::{remove_redundant_distinct, DistinctRemoval, UniquenessMemo};
pub use join_elim::{eliminate_join, JoinElimination};
pub use pushdown::{push_down_distinct, DistinctPushdown};
pub use setops::{except_to_not_exists, intersect_to_exists, ExceptToNotExists, IntersectToExists};
pub use subquery::{join_to_subquery, subquery_to_join, JoinToSubquery, SubqueryToJoin};
