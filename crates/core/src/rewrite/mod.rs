//! The semantic rewrites of paper §5 and §6.
//!
//! Each rule is a pure function from a bound query (or block) to an
//! optional rewritten form plus a prose justification naming the theorem
//! that licenses it. Rules never fire unless their theorem's side
//! conditions are verified by [`crate::analysis`], so every rewrite is
//! semantics-preserving — a property the integration suite re-checks by
//! executing original and rewritten queries on randomized instances.

pub mod distinct;
pub mod join_elim;
pub mod setops;
pub mod subquery;
pub mod util;

pub use distinct::{remove_redundant_distinct, remove_redundant_distinct_memo, UniquenessMemo};
pub use join_elim::eliminate_join;
pub use setops::{
    except_to_not_exists, except_to_not_exists_memo, intersect_to_exists, intersect_to_exists_memo,
};
pub use subquery::{join_to_subquery, subquery_to_join, subquery_to_join_memo};
