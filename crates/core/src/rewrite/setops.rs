//! Rules 3 and 4: `INTERSECT [ALL]` → `EXISTS` (§5.3, Theorem 3 /
//! Corollary 2) and `EXCEPT [ALL]` → `NOT EXISTS` (the extension the paper
//! mentions but omits for space).
//!
//! The crux the paper stresses: set operators compare tuples with the
//! null-aware `=̇` (`NULL =̇ NULL` is *true*), while a `WHERE` clause
//! compares with three-valued `=`. Moving the matching into a correlation
//! predicate therefore requires, for each output column `X`,
//!
//! ```sql
//! (R.X IS NULL AND S.X IS NULL) OR R.X = S.X
//! ```
//!
//! — a plain equi-predicate is correct only for columns that can never be
//! `NULL` (the paper notes Starburst's Rule 8 overlooked this). The rule
//! emits the plain form exactly when both compared columns are declared
//! non-nullable.
//!
//! Validity:
//!
//! * `INTERSECT` (distinct): rewrite over the duplicate-free operand
//!   (Theorem 3; the operator is symmetric so either side may lead). If
//!   neither operand is provably duplicate-free the rewrite still holds
//!   with a `DISTINCT` on the outer block — an extension we apply and
//!   flag.
//! * `INTERSECT ALL`: requires a duplicate-free operand (Corollary 2).
//!   With `|t|_L = j`, `|t|_R = k` and, say, R duplicate-free (`k ≤ 1`),
//!   `min(j, k)` is 1 exactly when `k = 1` and `j ≥ 1` — the rows of R
//!   that have an L-match.
//! * `EXCEPT` (distinct): over a duplicate-free left operand, `NOT
//!   EXISTS`; otherwise valid with an added outer `DISTINCT` (extension).
//!   Not symmetric — the left operand must lead.
//! * `EXCEPT ALL`: requires the **left** operand duplicate-free
//!   (`max(j − k, 0)` with `j ≤ 1` is `1` iff `j = 1 ∧ k = 0`).

use crate::rewrite::distinct::UniquenessTest;
use crate::rewrite::util::rebuild_predicate;
use crate::rules::{Justification, RewriteRule, RuleContext};
use uniq_plan::{AttrRef, BScalar, BoundExpr, BoundQuery, BoundSpec};
use uniq_sql::{CmpOp, Distinct, SetOp};

/// Is this block's result free of duplicate rows (either declared
/// `DISTINCT` or provable via Theorem 1)?
fn block_is_duplicate_free(spec: &BoundSpec, cx: &mut RuleContext) -> Option<String> {
    if spec.distinct == Distinct::Distinct {
        return Some("the block already eliminates duplicates".into());
    }
    cx.is_provably_unique(spec)
}

/// Build the null-aware correlation predicate matching `outer`'s projected
/// columns (referenced one level up) against `inner`'s (local).
fn correlation_predicate(outer: &BoundSpec, inner: &BoundSpec) -> Option<BoundExpr> {
    let atoms: Vec<BoundExpr> = outer
        .projection
        .iter()
        .zip(&inner.projection)
        .map(|(o, i)| {
            let o_ref = BScalar::Attr(AttrRef { up: 1, idx: o.attr });
            let i_ref = BScalar::Attr(AttrRef::local(i.attr));
            let eq = BoundExpr::Cmp {
                op: CmpOp::Eq,
                left: o_ref.clone(),
                right: i_ref.clone(),
            };
            let o_nullable = attr_nullable(outer, o.attr);
            let i_nullable = attr_nullable(inner, i.attr);
            if o_nullable || i_nullable {
                // (o IS NULL AND i IS NULL) OR o = i  — the =̇ operator.
                BoundExpr::or(
                    BoundExpr::and(
                        BoundExpr::IsNull {
                            scalar: o_ref,
                            negated: false,
                        },
                        BoundExpr::IsNull {
                            scalar: i_ref,
                            negated: false,
                        },
                    ),
                    eq,
                )
            } else {
                // Both non-nullable: the plain equi-predicate suffices
                // (paper footnote 1).
                eq
            }
        })
        .collect();
    BoundExpr::conjoin(atoms)
}

fn attr_nullable(spec: &BoundSpec, attr: usize) -> bool {
    match spec.attr_owner(attr) {
        Some((t, c)) => t.schema.columns[c].nullable,
        None => true,
    }
}

/// Rewrite `outer <op> inner` into `outer` filtered by a correlated
/// `[NOT] EXISTS (inner)` subquery.
fn fuse(outer: &BoundSpec, inner: &BoundSpec, negated: bool, force_distinct: bool) -> BoundSpec {
    let mut sub = inner.clone();
    // The inner block's own predicate is extended with the correlation;
    // its references are untouched (it keeps its own block).
    let corr = correlation_predicate(outer, inner);
    let mut sub_conjuncts: Vec<BoundExpr> = Vec::new();
    if let Some(p) = sub.predicate.take() {
        // Its refs gain one enclosing block? No: the inner block stays a
        // block; only its *position* changes (operand → subquery), which
        // does not alter local references, and the paper's class has no
        // correlated references inside set-operation operands.
        sub_conjuncts.push(p);
    }
    if let Some(c) = corr {
        sub_conjuncts.push(c);
    }
    sub.predicate = rebuild_predicate(sub_conjuncts);

    let mut result = outer.clone();
    if force_distinct {
        result.distinct = Distinct::Distinct;
    }
    let exists = BoundExpr::Exists {
        negated,
        subquery: Box::new(sub),
    };
    result.predicate = Some(match result.predicate.take() {
        Some(p) => BoundExpr::and(p, exists),
        None => exists,
    });
    result
}

/// Rule 3: Theorem 3 / Corollary 2 — rewrite an `INTERSECT [ALL]` whose
/// operands are plain blocks into an `EXISTS` filter over one operand.
/// The single code path is [`RewriteRule::apply_query`];
/// [`intersect_to_exists`] is a thin shim over it.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntersectToExists;

impl RewriteRule for IntersectToExists {
    fn name(&self) -> &'static str {
        "intersect-to-exists"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 3 / Corollary 2"
    }

    fn apply_query(
        &self,
        query: &BoundQuery,
        cx: &mut RuleContext,
    ) -> Option<(BoundQuery, Justification)> {
        let BoundQuery::SetOp {
            op: SetOp::Intersect,
            all,
            left,
            right,
        } = query
        else {
            return None;
        };
        let (l, r) = (left.as_spec()?, right.as_spec()?);
        if let Some(reason) = block_is_duplicate_free(l, cx) {
            let v = fuse(l, r, false, false);
            let just = if *all {
                Justification::new(
                    "Corollary 2",
                    format!("INTERSECT ALL → EXISTS over the left operand (Corollary 2: {reason})"),
                )
            } else {
                Justification::new(
                    "Theorem 3",
                    format!("INTERSECT → EXISTS over the left operand (Theorem 3: {reason})"),
                )
            };
            return Some((BoundQuery::Spec(Box::new(v)), just));
        }
        if let Some(reason) = block_is_duplicate_free(r, cx) {
            let v = fuse(r, l, false, false);
            let just = if *all {
                Justification::new(
                    "Corollary 2",
                    format!(
                        "INTERSECT ALL → EXISTS over the right operand \
                         (Corollary 2, operands interchanged: {reason})"
                    ),
                )
            } else {
                Justification::new(
                    "Theorem 3",
                    format!(
                        "INTERSECT → EXISTS over the right operand \
                         (Theorem 3, operands interchanged: {reason})"
                    ),
                )
            };
            return Some((BoundQuery::Spec(Box::new(v)), just));
        }
        if !*all {
            // Extension: neither operand duplicate-free — still valid for
            // the distinct INTERSECT by adding DISTINCT to the outer block.
            let v = fuse(l, r, false, true);
            return Some((
                BoundQuery::Spec(Box::new(v)),
                Justification::new(
                    "Theorem 3 (extension)",
                    "INTERSECT → EXISTS with added DISTINCT (neither operand is \
                     provably duplicate-free)",
                ),
            ));
        }
        None
    }
}

/// Rule 4: the `EXCEPT [ALL]` → `NOT EXISTS` extension the paper
/// mentions but omits for space. The single code path is
/// [`RewriteRule::apply_query`]; [`except_to_not_exists`] is a thin
/// shim over it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExceptToNotExists;

impl RewriteRule for ExceptToNotExists {
    fn name(&self) -> &'static str {
        "except-to-not-exists"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 3 (EXCEPT extension)"
    }

    fn apply_query(
        &self,
        query: &BoundQuery,
        cx: &mut RuleContext,
    ) -> Option<(BoundQuery, Justification)> {
        let BoundQuery::SetOp {
            op: SetOp::Except,
            all,
            left,
            right,
        } = query
        else {
            return None;
        };
        let (l, r) = (left.as_spec()?, right.as_spec()?);
        match block_is_duplicate_free(l, cx) {
            Some(reason) => {
                let v = fuse(l, r, true, false);
                let just = if *all {
                    Justification::new(
                        "Corollary 2 (EXCEPT extension)",
                        format!("EXCEPT ALL → NOT EXISTS (left operand duplicate-free: {reason})"),
                    )
                } else {
                    Justification::new(
                        "Theorem 3 (EXCEPT extension)",
                        format!("EXCEPT → NOT EXISTS (left operand duplicate-free: {reason})"),
                    )
                };
                Some((BoundQuery::Spec(Box::new(v)), just))
            }
            None if !*all => {
                // Distinct EXCEPT tolerates duplicates on the left if the
                // outer projection becomes DISTINCT.
                let v = fuse(l, r, true, true);
                Some((
                    BoundQuery::Spec(Box::new(v)),
                    Justification::new(
                        "Theorem 3 (extension)",
                        "EXCEPT → NOT EXISTS with added DISTINCT (left operand not \
                         provably duplicate-free)",
                    ),
                ))
            }
            None => None,
        }
    }
}

/// Standalone form of [`IntersectToExists`] (a shim over the one
/// context-taking code path, for callers outside the pipeline).
pub fn intersect_to_exists(
    query: &BoundQuery,
    test: UniquenessTest,
) -> Option<(BoundQuery, String)> {
    let mut cx = RuleContext::new(test);
    IntersectToExists
        .apply_query(query, &mut cx)
        .map(|(q, j)| (q, j.detail()))
}

/// Standalone form of [`ExceptToNotExists`] (a shim over the one
/// context-taking code path, for callers outside the pipeline).
pub fn except_to_not_exists(
    query: &BoundQuery,
    test: UniquenessTest,
) -> Option<(BoundQuery, String)> {
    let mut cx = RuleContext::new(test);
    ExceptToNotExists
        .apply_query(query, &mut cx)
        .map(|(q, j)| (q, j.detail()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn bound(sql: &str) -> BoundQuery {
        let db = supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap()
    }

    const EXAMPLE_9: &str = "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
         INTERSECT \
         SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'";

    #[test]
    fn example_9_intersect_to_exists() {
        let q = bound(EXAMPLE_9);
        let (rw, why) = intersect_to_exists(&q, UniquenessTest::Both).unwrap();
        assert!(why.contains("Theorem 3"), "{why}");
        let spec = rw.as_spec().unwrap();
        // Left operand leads (SNO is SUPPLIER's key → duplicate-free).
        assert_eq!(spec.from[0].binding.as_str(), "S");
        assert_eq!(spec.distinct, Distinct::All);
        let conjuncts = spec.predicate.as_ref().unwrap().conjuncts();
        let exists = conjuncts.last().unwrap();
        match exists {
            BoundExpr::Exists { negated, subquery } => {
                assert!(!negated);
                // Correlation on the projected SNO columns. Both are
                // declared NOT NULL (keys), so the plain equi-predicate
                // suffices — paper footnote 1.
                let sub_conjuncts = subquery.predicate.as_ref().unwrap().conjuncts();
                let corr = sub_conjuncts.last().unwrap();
                assert!(
                    matches!(corr, BoundExpr::Cmp { op: CmpOp::Eq, .. }),
                    "{corr:?}"
                );
            }
            other => panic!("expected EXISTS, got {other:?}"),
        }
    }

    #[test]
    fn nullable_columns_get_null_aware_correlation() {
        // OEM-PNO is nullable: correlation must use the =̇ form.
        let q = bound(
            "SELECT ALL P.OEM-PNO FROM PARTS P \
             INTERSECT \
             SELECT ALL P.OEM-PNO FROM PARTS P WHERE P.COLOR = 'RED'",
        );
        let (rw, _) = intersect_to_exists(&q, UniquenessTest::Both).unwrap();
        let spec = rw.as_spec().unwrap();
        let conjuncts = spec.predicate.as_ref().unwrap().conjuncts();
        let BoundExpr::Exists { subquery, .. } = conjuncts.last().unwrap() else {
            panic!("expected EXISTS");
        };
        let corr = subquery.predicate.as_ref().unwrap().conjuncts();
        let null_aware = corr.last().unwrap();
        // (o IS NULL AND i IS NULL) OR o = i
        assert!(matches!(null_aware, BoundExpr::Or(_, _)), "{null_aware:?}");
    }

    #[test]
    fn intersect_all_requires_a_unique_operand() {
        // Neither operand unique (SNAME / PNAME are not keys): ALL
        // semantics cannot be preserved.
        let q = bound(
            "SELECT ALL S.SNAME FROM SUPPLIER S \
             INTERSECT ALL \
             SELECT ALL P.PNAME FROM PARTS P",
        );
        assert!(intersect_to_exists(&q, UniquenessTest::Both).is_none());
    }

    #[test]
    fn intersect_all_with_unique_right_operand_swaps() {
        let q = bound(
            "SELECT ALL S.SNAME FROM SUPPLIER S \
             INTERSECT ALL \
             SELECT DISTINCT P.PNAME FROM PARTS P",
        );
        let (rw, why) = intersect_to_exists(&q, UniquenessTest::Both).unwrap();
        assert!(why.contains("interchanged"), "{why}");
        let spec = rw.as_spec().unwrap();
        assert_eq!(spec.from[0].binding.as_str(), "P");
    }

    #[test]
    fn plain_intersect_falls_back_to_added_distinct() {
        let q = bound(
            "SELECT ALL S.SNAME FROM SUPPLIER S \
             INTERSECT \
             SELECT ALL P.PNAME FROM PARTS P",
        );
        let (rw, why) = intersect_to_exists(&q, UniquenessTest::Both).unwrap();
        assert!(why.contains("added DISTINCT"), "{why}");
        assert_eq!(rw.as_spec().unwrap().distinct, Distinct::Distinct);
    }

    #[test]
    fn except_uses_not_exists_and_keeps_left() {
        let q = bound(
            "SELECT ALL S.SNO FROM SUPPLIER S \
             EXCEPT \
             SELECT ALL A.SNO FROM AGENTS A",
        );
        let (rw, why) = except_to_not_exists(&q, UniquenessTest::Both).unwrap();
        assert!(why.contains("NOT EXISTS"), "{why}");
        let spec = rw.as_spec().unwrap();
        assert_eq!(spec.from[0].binding.as_str(), "S");
        let conjuncts = spec.predicate.as_ref().map(|p| p.conjuncts()).unwrap();
        assert!(matches!(
            conjuncts.last().unwrap(),
            BoundExpr::Exists { negated: true, .. }
        ));
    }

    #[test]
    fn except_all_requires_unique_left() {
        let q = bound(
            "SELECT ALL S.SNAME FROM SUPPLIER S \
             EXCEPT ALL \
             SELECT ALL P.PNAME FROM PARTS P",
        );
        assert!(except_to_not_exists(&q, UniquenessTest::Both).is_none());
        // Unique RIGHT does not help EXCEPT ALL.
        let q = bound(
            "SELECT ALL S.SNAME FROM SUPPLIER S \
             EXCEPT ALL \
             SELECT DISTINCT P.PNAME FROM PARTS P",
        );
        assert!(except_to_not_exists(&q, UniquenessTest::Both).is_none());
    }

    #[test]
    fn plain_spec_is_not_touched() {
        let q = bound("SELECT ALL S.SNO FROM SUPPLIER S");
        assert!(intersect_to_exists(&q, UniquenessTest::Both).is_none());
        assert!(except_to_not_exists(&q, UniquenessTest::Both).is_none());
    }
}
