//! A decision procedure for Theorem 1's *exact* uniqueness condition on
//! finite domains — used to validate the sufficient tests against the
//! real thing.
//!
//! Theorem 1 quantifies over all tuples of `Domain(R × S)` and all host
//! variable values; testing it is NP-complete in general (paper §4), but
//! over *finite* column domains it is decidable by enumeration. This
//! module implements both sides of the theorem's equivalence:
//!
//! * [`condition_holds`] — the paper's condition (4) verbatim: for every
//!   pair of product tuples and every host binding, if the table
//!   constraints (false-interpreted), the key dependencies (under `=̇`)
//!   and the query predicate (false-interpreted, both tuples) all hold,
//!   then agreement on the projection implies agreement on
//!   `Key(R) ⊕ Key(S)`;
//! * [`duplicates_possible`] — the semantic side: does *any* valid
//!   instance (with at most two rows per table — the paper's necessity
//!   proof shows two suffice) make the `ALL` query produce duplicates?
//!
//! Theorem 1 states `condition_holds ⟺ !duplicates_possible`; the test
//! suite checks that equivalence over randomized small schemas and
//! queries, which reproduces the theorem itself rather than trusting it.
//!
//! Restrictions: the block must be subquery-free (Theorem 1's class) and
//! the enumeration cost is exponential in arity — keep domains tiny.

use uniq_catalog::validate;
use uniq_plan::{BScalar, BoundExpr, BoundSpec, HostVars};
use uniq_sql::CmpOp;
use uniq_types::{Error, HostVarName, Result, Tri, Value};

/// Per-table column domains: `domains[t][c]` lists the values column `c`
/// of `FROM` table `t` may take (include `Value::Null` for nullable
/// columns you want exercised).
pub type Domains = Vec<Vec<Vec<Value>>>;

/// Host-variable domains.
pub type HostDomains = Vec<(HostVarName, Vec<Value>)>;

/// Evaluate a subquery-free bound predicate on one product tuple under
/// three-valued logic. Public so normalization equivalence can be
/// property-tested without an executor.
pub fn eval_predicate(e: &BoundExpr, tuple: &[Value], hv: &HostVars) -> Result<Tri> {
    eval(e, tuple, hv)
}

fn eval(e: &BoundExpr, tuple: &[Value], hv: &HostVars) -> Result<Tri> {
    let scalar = |s: &BScalar| -> Result<Value> {
        match s {
            BScalar::Literal(v) => Ok(v.clone()),
            BScalar::HostVar(h) => Ok(hv.get(h)?.clone()),
            BScalar::Attr(a) if a.is_local() => Ok(tuple[a.idx].clone()),
            BScalar::Attr(_) => Err(Error::internal(
                "Theorem 1 condition is for uncorrelated blocks",
            )),
        }
    };
    let cmp = |op: CmpOp, l: &Value, r: &Value| -> Result<Tri> {
        Ok(match l.sql_cmp(r)? {
            None => Tri::Unknown,
            Some(o) => Tri::from_bool(match op {
                CmpOp::Eq => o.is_eq(),
                CmpOp::Ne => o.is_ne(),
                CmpOp::Lt => o.is_lt(),
                CmpOp::Le => o.is_le(),
                CmpOp::Gt => o.is_gt(),
                CmpOp::Ge => o.is_ge(),
            }),
        })
    };
    match e {
        BoundExpr::Cmp { op, left, right } => cmp(*op, &scalar(left)?, &scalar(right)?),
        BoundExpr::Between {
            scalar: s,
            low,
            high,
            negated,
        } => {
            let v = scalar(s)?;
            let t = cmp(CmpOp::Ge, &v, &scalar(low)?)?.and(cmp(CmpOp::Le, &v, &scalar(high)?)?);
            Ok(if *negated { t.not() } else { t })
        }
        BoundExpr::InList {
            scalar: s,
            list,
            negated,
        } => {
            let v = scalar(s)?;
            let mut t = Tri::False;
            for item in list {
                t = t.or(cmp(CmpOp::Eq, &v, &scalar(item)?)?);
            }
            Ok(if *negated { t.not() } else { t })
        }
        BoundExpr::IsNull { scalar: s, negated } => {
            Ok(Tri::from_bool(scalar(s)?.is_null() != *negated))
        }
        BoundExpr::And(a, b) => Ok(eval(a, tuple, hv)?.and(eval(b, tuple, hv)?)),
        BoundExpr::Or(a, b) => Ok(eval(a, tuple, hv)?.or(eval(b, tuple, hv)?)),
        BoundExpr::Not(a) => Ok(eval(a, tuple, hv)?.not()),
        BoundExpr::Exists { .. } | BoundExpr::InSubquery { .. } => Err(Error::internal(
            "Theorem 1's condition is stated for subquery-free predicates",
        )),
    }
}

/// Enumerate every tuple of one table's domain.
fn table_domain(domains: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = vec![Vec::new()];
    for col in domains {
        let mut next = Vec::with_capacity(out.len() * col.len());
        for prefix in &out {
            for v in col {
                let mut t = prefix.clone();
                t.push(v.clone());
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// Rows of `table` that satisfy its CHECK constraints (true-interpreted,
/// as in a valid instance).
fn checked_rows(spec: &BoundSpec, t: usize, domains: &Domains) -> Result<Vec<Vec<Value>>> {
    let schema = &spec.from[t].schema;
    let mut out = Vec::new();
    'rows: for row in table_domain(&domains[t]) {
        for (c, col) in schema.columns.iter().enumerate() {
            if row[c].is_null() && !col.nullable {
                continue 'rows;
            }
        }
        for check in schema.checks() {
            if !validate::eval_check(schema, &row, check)?.true_interpreted() {
                continue 'rows;
            }
        }
        out.push(row);
    }
    Ok(out)
}

fn all_host_bindings(hosts: &HostDomains) -> Vec<HostVars> {
    let mut out = vec![HostVars::new()];
    for (name, values) in hosts {
        let mut next = Vec::with_capacity(out.len() * values.len());
        for hv in &out {
            for v in values {
                let mut h = hv.clone();
                h.set(name.clone(), v.clone());
                next.push(h);
            }
        }
        out = next;
    }
    out
}

/// Do two rows agree (`=̇`) on the given columns?
fn agree(a: &[Value], b: &[Value], cols: impl IntoIterator<Item = usize>) -> Result<bool> {
    for c in cols {
        if !a[c].null_eq(&b[c])? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The key-dependency antecedent of condition (4): for each candidate key
/// of each table, if `r` and `r'` agree on the key columns they must
/// agree on the whole table block.
fn key_dependencies_hold(spec: &BoundSpec, r: &[Value], r2: &[Value]) -> Result<bool> {
    for t in &spec.from {
        for key in t.schema.candidate_keys() {
            let key_cols = key.columns.iter().map(|&c| t.offset + c);
            if agree(r, r2, key_cols)? && !agree(r, r2, t.attr_range())? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Test the paper's condition (4) by enumeration over the given domains.
///
/// Returns `Ok(true)` iff for **every** pair of product tuples and every
/// host binding, the antecedents imply
/// `(r[A] =̇ r'[A]) ⇒ (r[Key(R) ⊕ Key(S)] =̇ r'[Key(R) ⊕ Key(S)])`,
/// where the key concatenation uses each table's primary (first
/// candidate) key, as in the theorem's statement.
pub fn condition_holds(spec: &BoundSpec, domains: &Domains, hosts: &HostDomains) -> Result<bool> {
    if spec.from.len() != domains.len() {
        return Err(Error::internal("one domain vector per FROM table"));
    }
    for t in &spec.from {
        if !t.schema.has_key() {
            return Err(Error::internal(
                "Theorem 1 requires a candidate key on every table",
            ));
        }
    }
    // Product tuples satisfying the (false-interpreted) table constraints.
    let per_table: Vec<Vec<Vec<Value>>> = (0..spec.from.len())
        .map(|t| checked_rows(spec, t, domains))
        .collect::<Result<_>>()?;
    let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
    for rows in &per_table {
        let mut next = Vec::with_capacity(tuples.len() * rows.len());
        for prefix in &tuples {
            for row in rows {
                let mut t = prefix.clone();
                t.extend(row.iter().cloned());
                next.push(t);
            }
        }
        tuples = next;
    }
    let proj: Vec<usize> = spec.projection.iter().map(|p| p.attr).collect();
    let key_attrs: Vec<usize> = spec
        .from
        .iter()
        .flat_map(|t| {
            t.schema
                .candidate_keys()
                .next()
                .expect("checked above")
                .columns
                .iter()
                .map(|&c| t.offset + c)
                .collect::<Vec<_>>()
        })
        .collect();

    for hv in all_host_bindings(hosts) {
        // Tuples passing the query predicate under this binding.
        let mut qualifying: Vec<&Vec<Value>> = Vec::new();
        for t in &tuples {
            let passes = match &spec.predicate {
                None => true,
                Some(p) => eval(p, t, &hv)?.false_interpreted(),
            };
            if passes {
                qualifying.push(t);
            }
        }
        for (i, r) in qualifying.iter().enumerate() {
            for r2 in &qualifying[i..] {
                if !key_dependencies_hold(spec, r, r2)? {
                    continue;
                }
                if agree(r, r2, proj.iter().copied())? && !agree(r, r2, key_attrs.iter().copied())?
                {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// The semantic side: does some valid instance with at most two rows per
/// table (sufficient by the necessity proof) make the `ALL` projection
/// produce duplicate rows?
pub fn duplicates_possible(
    spec: &BoundSpec,
    domains: &Domains,
    hosts: &HostDomains,
) -> Result<bool> {
    let per_table: Vec<Vec<Vec<Value>>> = (0..spec.from.len())
        .map(|t| checked_rows(spec, t, domains))
        .collect::<Result<_>>()?;
    // Valid ≤2-row instances per table: all pairs (i ≤ j, keys compatible).
    let mut instances_per_table: Vec<Vec<Vec<&Vec<Value>>>> = Vec::new();
    for (t, rows) in per_table.iter().enumerate() {
        let schema = &spec.from[t].schema;
        let mut instances: Vec<Vec<&Vec<Value>>> = Vec::new();
        for (i, a) in rows.iter().enumerate() {
            instances.push(vec![a]);
            'second: for b in &rows[i + 1..] {
                for key in schema.candidate_keys() {
                    if validate::key_conflict(&key.columns, a, b)? {
                        continue 'second;
                    }
                }
                instances.push(vec![a, b]);
            }
        }
        instances_per_table.push(instances);
    }

    let proj: Vec<usize> = spec.projection.iter().map(|p| p.attr).collect();
    let bindings = all_host_bindings(hosts);

    // Enumerate instance combinations.
    fn combos<'a>(per_table: &'a [Vec<Vec<&'a Vec<Value>>>]) -> Vec<Vec<&'a Vec<&'a Vec<Value>>>> {
        let mut out: Vec<Vec<&Vec<&Vec<Value>>>> = vec![Vec::new()];
        for table in per_table {
            let mut next = Vec::with_capacity(out.len() * table.len());
            for prefix in &out {
                for inst in table {
                    let mut c = prefix.clone();
                    c.push(inst);
                    next.push(c);
                }
            }
            out = next;
        }
        out
    }

    for combo in combos(&instances_per_table) {
        // The product of the chosen instances.
        let mut product: Vec<Vec<Value>> = vec![Vec::new()];
        for inst in &combo {
            let mut next = Vec::with_capacity(product.len() * inst.len());
            for prefix in &product {
                for row in inst.iter() {
                    let mut t = prefix.clone();
                    t.extend(row.iter().cloned());
                    next.push(t);
                }
            }
            product = next;
        }
        for hv in &bindings {
            let mut seen: Vec<Vec<Value>> = Vec::new();
            for tuple in &product {
                let passes = match &spec.predicate {
                    None => true,
                    Some(p) => eval(p, tuple, hv)?.false_interpreted(),
                };
                if !passes {
                    continue;
                }
                let projected: Vec<Value> = proj.iter().map(|&a| tuple[a].clone()).collect();
                if seen
                    .iter()
                    .any(|s| uniq_types::value::tuple_null_eq(s, &projected).unwrap_or(false))
                {
                    return Ok(true);
                }
                seen.push(projected);
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn setup(ddl: &str, sql: &str) -> BoundSpec {
        let mut db = uniq_catalog::Database::new();
        db.run_script(ddl).unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap())
            .unwrap()
            .as_spec()
            .unwrap()
            .clone()
    }

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn key_projection_satisfies_condition() {
        let spec = setup(
            "CREATE TABLE R (K INTEGER, A INTEGER, PRIMARY KEY (K))",
            "SELECT DISTINCT R.K FROM R",
        );
        let domains = vec![vec![ints(&[1, 2]), ints(&[5, 6])]];
        assert!(condition_holds(&spec, &domains, &vec![]).unwrap());
        assert!(!duplicates_possible(&spec, &domains, &vec![]).unwrap());
    }

    #[test]
    fn non_key_projection_fails_condition_and_duplicates_exist() {
        let spec = setup(
            "CREATE TABLE R (K INTEGER, A INTEGER, PRIMARY KEY (K))",
            "SELECT DISTINCT R.A FROM R",
        );
        let domains = vec![vec![ints(&[1, 2]), ints(&[5, 6])]];
        assert!(!condition_holds(&spec, &domains, &vec![]).unwrap());
        assert!(duplicates_possible(&spec, &domains, &vec![]).unwrap());
    }

    #[test]
    fn type1_binding_restores_uniqueness() {
        let spec = setup(
            "CREATE TABLE R (K INTEGER, A INTEGER, PRIMARY KEY (K))",
            "SELECT DISTINCT R.A FROM R WHERE R.K = 1",
        );
        let domains = vec![vec![ints(&[1, 2]), ints(&[5, 6])]];
        assert!(condition_holds(&spec, &domains, &vec![]).unwrap());
        assert!(!duplicates_possible(&spec, &domains, &vec![]).unwrap());
    }

    #[test]
    fn host_variable_binding_counts_as_constant() {
        let spec = setup(
            "CREATE TABLE R (K INTEGER, A INTEGER, PRIMARY KEY (K))",
            "SELECT DISTINCT R.A FROM R WHERE R.K = :H",
        );
        let domains = vec![vec![ints(&[1, 2]), ints(&[5, 6])]];
        let hosts = vec![("H".into(), ints(&[1, 2]))];
        assert!(condition_holds(&spec, &domains, &hosts).unwrap());
        assert!(!duplicates_possible(&spec, &domains, &hosts).unwrap());
    }

    #[test]
    fn check_constraint_can_make_condition_hold() {
        // CHECK pins K to 7: every qualifying row has the same key, so any
        // projection is duplicate-free. Algorithm 1 ignores checks and
        // answers NO; the exact condition answers YES — the gap §4.1
        // acknowledges.
        let spec = setup(
            "CREATE TABLE R (K INTEGER, A INTEGER, PRIMARY KEY (K), CHECK (K = 7))",
            "SELECT DISTINCT R.A FROM R",
        );
        let domains = vec![vec![ints(&[6, 7, 8]), ints(&[5, 6])]];
        assert!(condition_holds(&spec, &domains, &vec![]).unwrap());
        assert!(!duplicates_possible(&spec, &domains, &vec![]).unwrap());
        let alg1 =
            crate::algorithm1::algorithm1(&spec, &crate::algorithm1::Algorithm1Options::default());
        assert!(!alg1.unique, "Algorithm 1 ignores table constraints");
    }

    #[test]
    fn two_table_join_on_keys() {
        let ddl = "CREATE TABLE R (K INTEGER, A INTEGER, PRIMARY KEY (K));
                   CREATE TABLE S (J INTEGER, B INTEGER, PRIMARY KEY (J));";
        let both = |sql: &str| -> (bool, bool) {
            let spec = setup(ddl, sql);
            let domains = vec![
                vec![ints(&[1, 2]), ints(&[5, 6])],
                vec![ints(&[1, 2]), ints(&[5, 6])],
            ];
            (
                condition_holds(&spec, &domains, &vec![]).unwrap(),
                duplicates_possible(&spec, &domains, &vec![]).unwrap(),
            )
        };
        // Keys of both tables projected: unique.
        let (cond, dup) = both("SELECT DISTINCT R.K, S.J FROM R, S WHERE R.K = S.J");
        assert!(cond && !dup);
        // Only non-keys projected: duplicates possible.
        let (cond, dup) = both("SELECT DISTINCT R.A, S.B FROM R, S WHERE R.K = S.J");
        assert!(!cond && dup);
    }

    #[test]
    fn nullable_unique_key_with_null_domain() {
        // UNIQUE key with NULLs: =̇ treats NULL as a value, so projecting
        // the unique column is still duplicate-free.
        let spec = setup(
            "CREATE TABLE R (K INTEGER NOT NULL, U INTEGER, A INTEGER, \
             PRIMARY KEY (K), UNIQUE (U))",
            "SELECT DISTINCT R.U FROM R",
        );
        let mut u_domain = ints(&[1, 2]);
        u_domain.push(Value::Null);
        let domains = vec![vec![ints(&[1, 2]), u_domain, ints(&[9])]];
        // Projection is the UNIQUE candidate key U... but the theorem's
        // consequent uses the PRIMARY key K, which U determines through
        // the key dependency antecedent.
        assert!(condition_holds(&spec, &domains, &vec![]).unwrap());
        assert!(!duplicates_possible(&spec, &domains, &vec![]).unwrap());
    }

    #[test]
    fn subquery_predicates_are_rejected() {
        let db = uniq_catalog::sample::supplier_schema().unwrap();
        let bound = bind_query(
            db.catalog(),
            &parse_query(
                "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE EXISTS \
                 (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            )
            .unwrap(),
        )
        .unwrap();
        let spec = bound.as_spec().unwrap();
        let domains = vec![vec![ints(&[1]); 5]];
        assert!(condition_holds(spec, &domains, &vec![]).is_err());
    }
}
