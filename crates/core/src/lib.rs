//! The paper's contribution: uniqueness analysis and the query rewrites it
//! licenses.
//!
//! * [`mod@algorithm1`] — a faithful, line-by-line implementation of the
//!   paper's Algorithm 1 (the practical sufficient test for Theorem 1's
//!   uniqueness condition), including its CNF → DNF expansion and its
//!   documented incompletenesses.
//! * [`analysis`] — the production path: a functional-dependency-based
//!   sufficient test that subsumes Algorithm 1 (same Type-1/Type-2
//!   reasoning expressed as derived FDs) and additionally provides the
//!   *single-tuple condition* of Theorem 2 for subquery blocks.
//! * [`rewrite`] — the semantic transformations of §5 and §6:
//!   redundant-`DISTINCT` removal (Theorem 1), subquery → join (Theorem 2
//!   and Corollary 1), `INTERSECT [ALL]` → `EXISTS` (Theorem 3 and
//!   Corollary 2), `EXCEPT [ALL]` → `NOT EXISTS` (the extension the paper
//!   mentions but elides for space), join → subquery for navigational
//!   back-ends (§6), and the proof-gated `DISTINCT` pushdown (Corollary 1
//!   read right-to-left, fired only on a symbolic proof).
//! * [`rules`] — the rule engine: the [`rules::RewriteRule`] trait every
//!   rewrite implements and the [`rules::RuleContext`] (uniqueness memo +
//!   per-rule stats + the `uniq-proof` equivalence checker) the driver
//!   threads through every invocation. Every fired step carries a
//!   [`rules::ProofStatus`]: symbolically `Proved`, or `PropertyTested`
//!   by the execution-equivalence oracle.
//! * [`pipeline`] — an [`pipeline::Optimizer`] that drives a registry of
//!   rules to fixpoint over a bound query with a single bottom-up
//!   traversal per pass, and reports each step in both prose and
//!   rewritten SQL as a [`pipeline::RewriteTrace`].
//! * [`theorem1`] — a finite-domain decision procedure for Theorem 1's
//!   *exact* condition, plus the semantic side (duplicates possible on
//!   some ≤2-row valid instance); their equivalence — the theorem itself
//!   — is property-tested.
//! * [`unbind`] — lowers a bound query back to AST so every rewrite can be
//!   printed as a concrete SQL statement.

pub mod agg;
pub mod algorithm1;
pub mod analysis;
pub mod pipeline;
pub mod rewrite;
pub mod rules;
pub mod theorem1;
pub mod unbind;

pub use agg::{optimize_output, COUNT_DISTINCT_RULE, GROUP_ELISION_RULE};
pub use algorithm1::{algorithm1, Algorithm1Options, Algorithm1Outcome};
pub use analysis::{derived_fds, single_tuple_condition, unique_projection, UniquenessReport};
pub use pipeline::{OptimizeOutcome, Optimizer, OptimizerOptions, RewriteStep, RewriteTrace};
pub use rules::{Justification, ProofStatus, RewriteRule, RuleContext, RuleStats};
pub use unbind::unbind_query;
