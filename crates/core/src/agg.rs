//! Aggregate-output optimization: the uniqueness elisions over a
//! [`BoundOutput`].
//!
//! The aggregate surface lowers onto an ordinary `SELECT ALL` block (the
//! binder lays grouping columns out first in the body's projection), so
//! both headline elisions reduce to **Theorem 1's duplicate-free
//! condition on a derived projection of the body**, which the U-semiring
//! checker can prove symbolically:
//!
//! * **Key-covered `GROUP BY`** — if `SELECT DISTINCT (group cols)` ≡
//!   `SELECT ALL (group cols)` over the body, every row is its own
//!   group: the executor skips the hash aggregate entirely and computes
//!   aggregates per-row in one pass (zero hash operations).
//! * **`COUNT(DISTINCT e)` → `COUNT(e)`** — if `SELECT DISTINCT
//!   (group cols, e)` ≡ `SELECT ALL (group cols, e)`, the argument is
//!   duplicate-free within every group, so the distinct-set bookkeeping
//!   is dead weight (grounded in *Decidability of Equivalence of
//!   Aggregate Count-Distinct Queries*, see PAPERS.md). `NULL`s make
//!   the proof fail conservatively: two `NULL` arguments in one group
//!   duplicate the probe tuple, and `COUNT(DISTINCT)` ignores `NULL`s
//!   anyway.
//!
//! Both rewrites are **proof-gated**: they fire only when the checker
//! returns `Proved`, and every firing appends a [`RewriteStep`] whose
//! before/after pair *is* the proof obligation (the DISTINCT-vs-ALL
//! probe), so `EXPLAIN` shows exactly what was proved.

use crate::pipeline::{Optimizer, RewriteStep, RewriteTrace};
use crate::rules::{Justification, RuleContext};
use crate::unbind::unbind_query;
use uniq_plan::{BoundAggItem, BoundOutput, BoundQuery, BoundSpec};
use uniq_sql::{AggFunc, Distinct};

/// Rule name of the key-covered `GROUP BY` elision.
pub const GROUP_ELISION_RULE: &str = "group-by-key-elision";
/// Rule name of the `COUNT(DISTINCT)` → `COUNT` elision.
pub const COUNT_DISTINCT_RULE: &str = "count-distinct-elision";

/// Optimize a full query: run the rewrite pipeline over the body, then —
/// when [`agg_elision`](crate::pipeline::OptimizerOptions::agg_elision)
/// is on — attempt the proof-gated aggregate elisions. Steps for the
/// elisions are appended to the body's trace.
pub fn optimize_output(optimizer: &Optimizer, output: &BoundOutput) -> (BoundOutput, RewriteTrace) {
    let outcome = optimizer.optimize(&output.body);
    let mut trace = outcome.trace;
    let mut out = BoundOutput {
        body: outcome.query,
        agg: output.agg.clone(),
        order_by: output.order_by.clone(),
        limit: output.limit,
    };
    if optimizer.options().agg_elision && out.agg.is_some() {
        let mut cx = RuleContext::new(optimizer.options().test);
        cx.register(COUNT_DISTINCT_RULE);
        cx.register(GROUP_ELISION_RULE);
        elide(&mut out, &mut cx, &mut trace.steps);
        trace.rule_stats.extend(cx.into_stats());
    }
    (out, trace)
}

fn elide(out: &mut BoundOutput, cx: &mut RuleContext, steps: &mut Vec<RewriteStep>) {
    let Some(agg) = &mut out.agg else { return };
    let BoundQuery::Spec(spec) = &out.body else {
        return;
    };

    // COUNT(DISTINCT e) → COUNT(e), per aggregate item.
    let mut any_count_elided = false;
    for item in agg.items.iter_mut() {
        let BoundAggItem::Agg {
            func: AggFunc::Count,
            distinct: distinct @ true,
            arg: Some(p),
            name,
        } = item
        else {
            continue;
        };
        let mut positions: Vec<usize> = (0..agg.group_count).collect();
        positions.push(*p);
        let (before, after) = probe_pair(spec, &positions);
        let status = cx.prove_step(COUNT_DISTINCT_RULE, &before, &after);
        if !status.is_proved() {
            continue;
        }
        *distinct = false;
        any_count_elided = true;
        let just = Justification::new(
            "Theorem 1",
            format!(
                "COUNT(DISTINCT {name}) degraded to COUNT({name}): the checker proved \
                 (group keys, argument) duplicate-free over the body, so the distinct-set \
                 bookkeeping is dead weight"
            ),
        )
        .with_proof(status);
        push_step(steps, COUNT_DISTINCT_RULE, just, before, after);
    }
    if any_count_elided {
        agg.count_distinct_elided = true;
    }

    // Key-covered GROUP BY → no-op grouping.
    if agg.group_count > 0 && !agg.group_elided {
        let positions: Vec<usize> = (0..agg.group_count).collect();
        let (before, after) = probe_pair(spec, &positions);
        let status = cx.prove_step(GROUP_ELISION_RULE, &before, &after);
        if status.is_proved() {
            agg.group_elided = true;
            let just = Justification::new(
                "Theorem 1",
                "GROUP BY keys cover a candidate key of the body: the checker proved the \
                 group columns duplicate-free, so every row is its own group and the hash \
                 aggregate is elided"
                    .to_string(),
            )
            .with_proof(status);
            push_step(steps, GROUP_ELISION_RULE, just, before, after);
        }
    }
}

/// The DISTINCT-vs-ALL proof obligation over the given projection
/// positions of the body block.
fn probe_pair(spec: &BoundSpec, positions: &[usize]) -> (BoundQuery, BoundQuery) {
    let projection = positions
        .iter()
        .map(|&p| spec.projection[p].clone())
        .collect::<Vec<_>>();
    let mut distinct = spec.clone();
    distinct.distinct = Distinct::Distinct;
    distinct.projection = projection.clone();
    let mut all = spec.clone();
    all.distinct = Distinct::All;
    all.projection = projection;
    (
        BoundQuery::Spec(Box::new(distinct)),
        BoundQuery::Spec(Box::new(all)),
    )
}

fn push_step(
    steps: &mut Vec<RewriteStep>,
    rule: &'static str,
    just: Justification,
    before: BoundQuery,
    after: BoundQuery,
) {
    steps.push(RewriteStep {
        rule,
        theorem: just.theorem(),
        why: just.detail(),
        proof: just.proof().cloned().unwrap_or_default(),
        sql_before: render(&before),
        sql_after: render(&after),
        before,
        after,
    });
}

fn render(q: &BoundQuery) -> String {
    unbind_query(q)
        .map(|ast| ast.to_string())
        .unwrap_or_else(|e| format!("<unprintable: {e}>"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::OptimizerOptions;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_output;
    use uniq_sql::parse_full_query;

    fn optimized(sql: &str, opts: OptimizerOptions) -> (BoundOutput, RewriteTrace) {
        let db = supplier_schema().unwrap();
        let out = bind_output(db.catalog(), &parse_full_query(sql).unwrap()).unwrap();
        optimize_output(&Optimizer::new(opts), &out)
    }

    #[test]
    fn key_covered_group_by_is_elided_with_proof() {
        // SNO is SUPPLIER's primary key: one group per row.
        let (out, trace) = optimized(
            "SELECT S.SNO, COUNT(*) FROM SUPPLIER S GROUP BY S.SNO",
            OptimizerOptions::relational(),
        );
        assert!(out.agg.unwrap().group_elided);
        let step = trace
            .steps
            .iter()
            .find(|s| s.rule == GROUP_ELISION_RULE)
            .expect("elision step recorded");
        assert!(step.proof.is_proved(), "{:?}", step.proof);
        assert!(step.sql_before.starts_with("SELECT DISTINCT"));
        assert!(step.sql_after.starts_with("SELECT ALL"));
    }

    #[test]
    fn non_key_group_by_is_not_elided() {
        let (out, trace) = optimized(
            "SELECT S.SCITY, COUNT(*) FROM SUPPLIER S GROUP BY S.SCITY",
            OptimizerOptions::relational(),
        );
        assert!(!out.agg.unwrap().group_elided);
        assert!(!trace.steps.iter().any(|s| s.rule == GROUP_ELISION_RULE));
    }

    #[test]
    fn count_distinct_over_key_degrades_to_count() {
        let (out, trace) = optimized(
            "SELECT COUNT(DISTINCT S.SNO) FROM SUPPLIER S",
            OptimizerOptions::relational(),
        );
        let agg = out.agg.unwrap();
        assert!(agg.count_distinct_elided);
        match &agg.items[0] {
            BoundAggItem::Agg { distinct, .. } => assert!(!distinct),
            other => panic!("expected aggregate item, got {other:?}"),
        }
        let step = trace
            .steps
            .iter()
            .find(|s| s.rule == COUNT_DISTINCT_RULE)
            .expect("elision step recorded");
        assert!(step.proof.is_proved());
    }

    #[test]
    fn count_distinct_over_non_key_is_kept() {
        let (out, trace) = optimized(
            "SELECT COUNT(DISTINCT S.SCITY) FROM SUPPLIER S",
            OptimizerOptions::relational(),
        );
        match &out.agg.unwrap().items[0] {
            BoundAggItem::Agg { distinct, .. } => assert!(distinct),
            other => panic!("expected aggregate item, got {other:?}"),
        }
        assert!(!trace.steps.iter().any(|s| s.rule == COUNT_DISTINCT_RULE));
    }

    #[test]
    fn disabled_options_skip_elision() {
        let (out, trace) = optimized(
            "SELECT S.SNO, COUNT(DISTINCT S.SNO) FROM SUPPLIER S GROUP BY S.SNO",
            OptimizerOptions::disabled(),
        );
        let agg = out.agg.unwrap();
        assert!(!agg.group_elided);
        assert!(!agg.count_distinct_elided);
        match &agg.items[1] {
            BoundAggItem::Agg { distinct, .. } => assert!(distinct),
            other => panic!("expected aggregate item, got {other:?}"),
        }
        assert!(trace.steps.is_empty());
    }

    #[test]
    fn plain_output_passes_through() {
        let (out, _) = optimized(
            "SELECT S.SNO FROM SUPPLIER S ORDER BY SNO LIMIT 3",
            OptimizerOptions::relational(),
        );
        assert!(out.agg.is_none());
        assert_eq!(out.limit, Some(3));
        assert_eq!(out.order_by, vec![(0, false)]);
    }
}
