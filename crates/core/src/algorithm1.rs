//! A faithful implementation of the paper's Algorithm 1.
//!
//! ```text
//!  5  Convert C_R ∧ C_S ∧ C_{R,S} ∧ T into CNF: C = D1 ∧ … ∧ Dn
//!  6  for each Di ∈ C do
//!  7     if Di contains an atomic condition not of Type 1 or Type 2
//!        then delete Di from C
//!  8     else if Di contains a disjunctive clause on v then delete Di
//! 10  if C = T then return NO
//! 11  else convert C to DNF: C = E1 ∨ … ∨ Em
//! 12  for each conjunctive component Ei ∈ C do
//! 13     create a set V that contains each attribute in A
//! 14     for each Type 1 condition (v = c) in Ei do add v to V
//! 15-16  compute the transitive closure of V based on Type 2
//!        conditions in Ei
//! 17     if Key(R) ⊕ Key(S) ⊆ V then proceed else return NO
//! 20  return YES
//! ```
//!
//! Type 1 conditions are `column = constant` (literal or host variable),
//! Type 2 are `column = column`.
//!
//! ## Erratum: line 8 must delete *every* disjunctive clause
//!
//! Line 8's wording ("contains a disjunctive clause on v", example
//! `X = 5 OR X = 10`) could be read as deleting only clauses where one
//! column appears in several disjuncts. That reading is **unsound**:
//! with clauses `(SNO = 1 OR B = 9) ∧ (SNO = 2 OR C = 'y') ∧ SNO = B`
//! over key `SNO` and projection `{D}`, every DNF disjunct pins `SNO` —
//! but to *different* constants in different disjuncts, so two distinct
//! rows (`SNO = 1` and `SNO = 9`) can agree on `D` and duplicate. The
//! paper's own §4.1 correctness proof assumes the surviving predicate
//! "contains only atomic conditions using `=`", i.e. after pruning the
//! conjunction is disjunction-free. We therefore implement line 8 as
//! *delete any clause containing more than one atom*, which matches the
//! proof (and makes the DNF of line 11 trivially a single conjunct — the
//! expansion is kept for fidelity to the printed text).
//!
//! Known incompletenesses, reproduced deliberately because this module is
//! the *paper's* algorithm (the FD test in [`crate::analysis`] subsumes
//! it):
//!
//! * Line 10 answers NO whenever pruning leaves no usable conjunct, even
//!   if the projection list alone contains every key
//!   (`SELECT DISTINCT SNO, SNAME FROM SUPPLIER` gets NO here, YES from
//!   the FD test).
//! * Table constraints (`CHECK`) are ignored, as §4.1 states.
//! * The CNF → DNF expansion is exponential; we add a size cap the paper
//!   does not have and answer NO on overflow, which preserves soundness.

use uniq_plan::norm::{
    classify_atom, cnf_to_dnf, to_cnf, type1_attr, type2_attrs, AtomClass, Clause, Conjunct,
};
use uniq_plan::{BoundExpr, BoundSpec};

/// Tuning knobs for Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct Algorithm1Options {
    /// Maximum CNF clause count before giving up (answer NO).
    pub max_cnf_clauses: usize,
    /// Maximum DNF disjunct count before giving up (answer NO).
    pub max_dnf_disjuncts: usize,
}

impl Default for Algorithm1Options {
    fn default() -> Self {
        Algorithm1Options {
            max_cnf_clauses: 4096,
            max_dnf_disjuncts: 4096,
        }
    }
}

/// The algorithm's answer plus a trace of its reasoning, suitable for
/// `EXPLAIN`-style output and for the paper's Example 5 walk-through.
#[derive(Debug, Clone)]
pub struct Algorithm1Outcome {
    /// YES — duplicate elimination is unnecessary.
    pub unique: bool,
    /// Human-readable trace lines, in execution order.
    pub trace: Vec<String>,
    /// CNF clause count before pruning (`None` if conversion overflowed).
    pub cnf_clauses: Option<usize>,
    /// Clauses surviving lines 6–9.
    pub kept_clauses: usize,
    /// DNF disjunct count (`None` if the expansion overflowed or was not
    /// reached).
    pub dnf_disjuncts: Option<usize>,
}

impl Algorithm1Outcome {
    fn no(reason: impl Into<String>, trace: Vec<String>) -> Algorithm1Outcome {
        let mut trace = trace;
        trace.push(format!("return NO: {}", reason.into()));
        Algorithm1Outcome {
            unique: false,
            trace,
            cnf_clauses: None,
            kept_clauses: 0,
            dnf_disjuncts: None,
        }
    }
}

/// Run Algorithm 1 on a bound query block.
///
/// Returns YES (`unique == true`) only when every projected result row is
/// guaranteed distinct, i.e. a `SELECT DISTINCT` over this block may drop
/// its `DISTINCT`.
pub fn algorithm1(spec: &BoundSpec, opts: &Algorithm1Options) -> Algorithm1Outcome {
    let mut trace: Vec<String> = Vec::new();

    // Precondition of Theorem 1: every table in the product has at least
    // one candidate key.
    for t in &spec.from {
        if !t.schema.has_key() {
            return Algorithm1Outcome::no(
                format!("table {} has no candidate key", t.binding),
                trace,
            );
        }
    }
    if spec.from.is_empty() {
        return Algorithm1Outcome::no("empty FROM clause", trace);
    }

    // Line 5: CNF of the whole selection predicate (∧ T for no predicate).
    let cnf: Vec<Clause> = match &spec.predicate {
        None => Vec::new(),
        Some(p) => match to_cnf(p, opts.max_cnf_clauses) {
            Some(c) => c,
            None => {
                return Algorithm1Outcome::no(
                    format!("CNF exceeds {} clauses", opts.max_cnf_clauses),
                    trace,
                )
            }
        },
    };
    let cnf_clauses = cnf.len();
    trace.push(format!("line 5: CNF has {cnf_clauses} clause(s)"));

    // Lines 6–9: prune clauses.
    let mut kept: Vec<Clause> = Vec::new();
    for clause in cnf {
        if clause.iter().any(|a| classify_atom(a) == AtomClass::Other) {
            trace.push(format!(
                "line 7: delete clause {} (contains a non-Type-1/2 atom)",
                describe_clause(spec, &clause)
            ));
            continue;
        }
        if clause.len() > 1 {
            // Line 8 (see module erratum): any disjunctive clause is
            // deleted — the correctness proof requires the surviving
            // condition to be a conjunction of atoms.
            trace.push(format!(
                "line 8: delete clause {} (disjunctive)",
                describe_clause(spec, &clause)
            ));
            continue;
        }
        kept.push(clause);
    }
    trace.push(format!("lines 6-9: {} clause(s) kept", kept.len()));

    // Line 10: C = T.
    if kept.is_empty() {
        let mut out = Algorithm1Outcome::no("C reduced to T (line 10)", trace);
        out.cnf_clauses = Some(cnf_clauses);
        return out;
    }

    // Line 11: DNF expansion.
    let dnf: Vec<Conjunct> = match cnf_to_dnf(&kept, opts.max_dnf_disjuncts) {
        Some(d) => d,
        None => {
            let mut out = Algorithm1Outcome::no(
                format!("DNF exceeds {} disjuncts", opts.max_dnf_disjuncts),
                trace,
            );
            out.cnf_clauses = Some(cnf_clauses);
            out.kept_clauses = kept.len();
            return out;
        }
    };
    trace.push(format!("line 11: DNF has {} disjunct(s)", dnf.len()));

    // Lines 12–19: test every disjunct.
    for (i, conjunct) in dnf.iter().enumerate() {
        // Line 13: V starts as the projection attributes.
        let mut v: Vec<bool> = vec![false; spec.product_arity()];
        for p in &spec.projection {
            v[p.attr] = true;
        }
        // Line 14: Type-1 conditions bind their column.
        for atom in conjunct {
            if let Some(a) = type1_attr(atom) {
                v[a] = true;
            }
        }
        // Lines 15–16: transitive closure under Type-2 conditions.
        let pairs: Vec<(usize, usize)> = conjunct.iter().filter_map(type2_attrs).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b) in &pairs {
                if v[a] && !v[b] {
                    v[b] = true;
                    changed = true;
                }
                if v[b] && !v[a] {
                    v[a] = true;
                    changed = true;
                }
            }
        }
        let v_names: Vec<String> = v
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(a, _)| spec.attr_name(a))
            .collect();
        trace.push(format!(
            "lines 13-16 (E{}): V = {{{}}}",
            i + 1,
            v_names.join(", ")
        ));

        // Line 17: some candidate key of every table must lie within V.
        for t in &spec.from {
            let covered = t
                .schema
                .candidate_keys()
                .any(|k| k.columns.iter().all(|&c| v[t.offset + c]));
            if !covered {
                trace.push(format!(
                    "line 17 (E{}): no candidate key of {} is contained in V",
                    i + 1,
                    t.binding
                ));
                trace.push("return NO".into());
                return Algorithm1Outcome {
                    unique: false,
                    trace,
                    cnf_clauses: Some(cnf_clauses),
                    kept_clauses: kept.len(),
                    dnf_disjuncts: Some(dnf.len()),
                };
            }
        }
    }

    // Line 20.
    trace.push("line 20: return YES".into());
    Algorithm1Outcome {
        unique: true,
        trace,
        cnf_clauses: Some(cnf_clauses),
        kept_clauses: kept.len(),
        dnf_disjuncts: Some(dnf.len()),
    }
}

fn describe_clause(spec: &BoundSpec, clause: &[BoundExpr]) -> String {
    let parts: Vec<String> = clause.iter().map(|a| describe_atom(spec, a)).collect();
    format!("({})", parts.join(" OR "))
}

fn describe_atom(spec: &BoundSpec, atom: &BoundExpr) -> String {
    use uniq_plan::BScalar;
    let scalar = |s: &BScalar| match s {
        BScalar::Attr(a) if a.is_local() => spec.attr_name(a.idx),
        BScalar::Attr(a) => format!("outer#{}.{}", a.up, a.idx),
        BScalar::Literal(v) => v.to_string(),
        BScalar::HostVar(h) => format!(":{h}"),
    };
    match atom {
        BoundExpr::Cmp { op, left, right } => {
            format!("{} {op} {}", scalar(left), scalar(right))
        }
        BoundExpr::IsNull { scalar: s, negated } => format!(
            "{} IS {}NULL",
            scalar(s),
            if *negated { "NOT " } else { "" }
        ),
        BoundExpr::Exists { negated, .. } => {
            format!("{}EXISTS(...)", if *negated { "NOT " } else { "" })
        }
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn run(sql: &str) -> Algorithm1Outcome {
        let db = supplier_schema().unwrap();
        let bound = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let spec = bound.as_spec().expect("single block");
        algorithm1(spec, &Algorithm1Options::default())
    }

    #[test]
    fn example_1_distinct_is_unnecessary() {
        // Paper Example 1: keys SNO, (SNO, PNO) all present or derivable.
        let out = run(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        assert!(out.unique, "trace: {:#?}", out.trace);
    }

    #[test]
    fn example_2_requires_duplicate_elimination() {
        // Paper Example 2: SNAME projected instead of SNO — two suppliers
        // with the same name may supply the same part.
        let out = run(
            "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        assert!(!out.unique);
    }

    #[test]
    fn example_5_trace_matches_paper() {
        // Paper Example 5 (= Example 4's query through Algorithm 1).
        let out = run(
            "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
        );
        assert!(out.unique, "trace: {:#?}", out.trace);
        // The paper's line 14: V = {S.SNO, SNAME, P.PNO, PNAME, P.SNO}.
        let v_line = out
            .trace
            .iter()
            .find(|l| l.starts_with("lines 13-16"))
            .unwrap();
        for col in ["S.SNO", "S.SNAME", "P.PNO", "P.PNAME", "P.SNO"] {
            assert!(v_line.contains(col), "missing {col} in {v_line}");
        }
        assert_eq!(out.dnf_disjuncts, Some(1));
    }

    #[test]
    fn example_6_supplier_name_binding() {
        // Paper Example 6: S.SNAME = :SUPPLIER-NAME binds SNAME (not a key)
        // but S.SNO is projected and S.SNO = P.SNO brings P.SNO in.
        let out = run(
            "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, PARTS P \
             WHERE S.SNAME = :SUPPLIER-NAME AND S.SNO = P.SNO",
        );
        assert!(out.unique, "trace: {:#?}", out.trace);
    }

    #[test]
    fn candidate_key_oem_pno_counts() {
        // OEM-PNO is a candidate key of PARTS: binding it (plus supplier
        // key) suffices even though the primary key is absent.
        let out = run("SELECT DISTINCT P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.OEM-PNO = :OEM AND S.SNO = P.SNO AND S.SNO = :S");
        assert!(out.unique, "trace: {:#?}", out.trace);
    }

    #[test]
    fn disjunction_on_same_column_is_dropped() {
        // X = 5 OR X = 10 (line 8's own example): binds nothing.
        let out = run("SELECT DISTINCT S.SNAME FROM SUPPLIER S \
             WHERE S.SNO = 5 OR S.SNO = 10");
        assert!(!out.unique);
        assert!(out.trace.iter().any(|l| l.starts_with("line 8: delete")));
    }

    #[test]
    fn disjunction_on_distinct_columns_is_also_dropped() {
        // See the module erratum: keeping (SNO = 1 OR SNAME = 'x') and
        // case-splitting it would be unsound; line 8 deletes it.
        let out = run("SELECT DISTINCT S.SCITY FROM SUPPLIER S \
             WHERE S.SNO = 1 OR S.SNAME = 'x'");
        assert!(!out.unique);
        assert!(out.trace.iter().any(|l| l.starts_with("line 8: delete")));
    }

    #[test]
    fn disjunctive_clause_weakens_but_conjunct_still_binds_key() {
        // The OR-clause is deleted; the remaining atomic SNO = 2 pins the
        // key, so the answer is YES with a single (trivial) DNF disjunct.
        let out = run("SELECT DISTINCT S.SCITY FROM SUPPLIER S \
             WHERE (S.SNO = 1 OR S.SNAME = 'x') AND S.SNO = 2");
        assert!(out.unique, "trace: {:#?}", out.trace);
        assert_eq!(out.dnf_disjuncts, Some(1));
    }

    #[test]
    fn erratum_counterexample_answers_no() {
        // (SNO = 1 OR BUDGET = 9) ∧ (SNO = 2 OR SCITY = 'Toronto')
        // ∧ SNO = BUDGET: under the unsound per-column reading every DNF
        // disjunct would pin SNO (to different constants!) and the
        // algorithm would wrongly answer YES; two rows with SNO 1 and 9
        // can then duplicate on SNAME. The sound reading answers NO.
        let out = run("SELECT DISTINCT S.SNAME FROM SUPPLIER S \
             WHERE (S.SNO = 1 OR S.BUDGET = 9) \
               AND (S.SNO = 2 OR S.SCITY = 'Toronto') \
               AND S.SNO = S.BUDGET");
        assert!(!out.unique);
    }

    #[test]
    fn line_10_incompleteness_no_predicate() {
        // Keys fully projected but no predicate: the paper's line 10
        // answers NO (C = T). Documented incompleteness.
        let out = run("SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S");
        assert!(!out.unique);
        assert!(
            out.trace.iter().any(|l| l.contains("line 10")),
            "{:?}",
            out.trace
        );
    }

    #[test]
    fn non_equality_atoms_weaken_but_do_not_block() {
        // BETWEEN is not Type 1/2: its clause is deleted, but SNO = :H
        // still binds the key.
        let out = run("SELECT DISTINCT S.SNAME FROM SUPPLIER S \
             WHERE S.SNO = :H AND S.BUDGET BETWEEN 1 AND 10");
        assert!(out.unique, "trace: {:#?}", out.trace);
    }

    #[test]
    fn table_without_key_answers_no() {
        let mut db = uniq_catalog::Database::new();
        db.run_script("CREATE TABLE HEAP (X INTEGER, Y INTEGER)")
            .unwrap();
        let bound = bind_query(
            db.catalog(),
            &parse_query("SELECT DISTINCT X FROM HEAP WHERE X = 1").unwrap(),
        )
        .unwrap();
        let out = algorithm1(bound.as_spec().unwrap(), &Algorithm1Options::default());
        assert!(!out.unique);
        assert!(out.trace.last().unwrap().contains("no candidate key"));
    }

    #[test]
    fn exists_atom_is_other_and_clause_dropped() {
        let out = run("SELECT DISTINCT S.SNAME FROM SUPPLIER S \
             WHERE S.SNO = :H AND EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)");
        // EXISTS clause dropped; SNO = :H still covers the key.
        assert!(out.unique);
    }

    #[test]
    fn cnf_overflow_answers_no() {
        // A predicate whose CNF explodes: a disjunction of 13 two-atom
        // conjunctions expands to 2^13 clauses, past the 4096 cap.
        let cols = ["SNO", "SNAME", "SCITY", "BUDGET", "STATUS"];
        let disjuncts: Vec<String> = (0..13)
            .map(|i| {
                let a = cols[i % 5];
                let b = cols[(i + 1) % 5];
                format!("(S.{a} = :H{i} AND S.{b} = :G{i})")
            })
            .collect();
        let sql = format!(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE {}",
            disjuncts.join(" OR ")
        );
        let out = run(&sql);
        assert!(!out.unique);
        assert!(
            out.trace.iter().any(|l| l.contains("CNF exceeds")),
            "{:?}",
            out.trace
        );
    }
}
