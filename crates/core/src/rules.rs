//! The rule engine: the [`RewriteRule`] trait every §5/§6 rewrite
//! implements, and the [`RuleContext`] the fixpoint driver threads
//! through every rule invocation.
//!
//! A rule is an object with a stable [`name`](RewriteRule::name), a
//! primary [theorem citation](RewriteRule::theorem), and one of two
//! entry points: [`apply_query`](RewriteRule::apply_query) for rules
//! that match whole query expressions (the set-operation lowerings) and
//! [`apply_spec`](RewriteRule::apply_spec) for rules that match a single
//! select block. A rule fires by returning the rewritten form together
//! with a [`Justification`] naming the exact theorem that licensed this
//! particular firing (one rule can hold several licenses — subquery
//! merging fires under Theorem 2 *or* Corollary 1, say).
//!
//! The [`RuleContext`] is the one shared mutable state: it owns the
//! per-optimize [`UniquenessMemo`], so every uniqueness verdict any rule
//! computes is reusable by every other rule in the same optimize call,
//! and it keeps per-rule [`RuleStats`] — attempts, fires, uniqueness
//! tests consulted, wall time — which the pipeline surfaces through the
//! rewrite trace all the way up to `EXPLAIN` and the bench report.
//!
//! Adding a rule family (PAPERS.md names bag-semantics equivalences and
//! embedded-dependency rewrites as the next two) is: implement
//! `RewriteRule`, push a `Box` of it onto
//! [`crate::pipeline::Optimizer::with_rule`] — no pipeline surgery.

use crate::rewrite::distinct::{UniquenessMemo, UniquenessTest};
use std::time::Instant;
use uniq_plan::{BoundQuery, BoundSpec};
use uniq_proof::check_equiv;

pub use uniq_proof::{Justification, ProofStatus};

/// A semantic rewrite rule. See the module docs for the contract.
///
/// Rules must be pure: given the same input and context verdicts they
/// must produce the same output, and they must only fire when their
/// theorem's side conditions hold (the integration suite executes every
/// firing's before/after SQL against randomized instances).
pub trait RewriteRule: std::fmt::Debug + Send + Sync {
    /// Stable identifier used in traces, stats and tests
    /// (`"distinct-removal"`, …).
    fn name(&self) -> &'static str;

    /// The rule's primary citation (`"Theorem 1"`, …). Individual
    /// firings may cite something more specific via [`Justification`].
    fn theorem(&self) -> &'static str;

    /// Attempt the rewrite on a whole query expression. Default: does
    /// not apply. Implemented by rules that match set operations.
    fn apply_query(
        &self,
        _query: &BoundQuery,
        _cx: &mut RuleContext,
    ) -> Option<(BoundQuery, Justification)> {
        None
    }

    /// Attempt the rewrite on a single select block. Default: does not
    /// apply. Implemented by the block-level rules.
    fn apply_spec(
        &self,
        _spec: &BoundSpec,
        _cx: &mut RuleContext,
    ) -> Option<(BoundSpec, Justification)> {
        None
    }
}

/// Per-rule counters for one optimize call (or an aggregation of many).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// The rule's [`RewriteRule::name`].
    pub rule: String,
    /// Times the driver offered the rule a node.
    pub attempts: u64,
    /// Times the rule fired.
    pub fires: u64,
    /// Uniqueness-test verdicts the rule consulted (memoized or not).
    pub uniqueness_tests: u64,
    /// Fired steps whose before/after pair the symbolic equivalence
    /// checker proved (the rest fall back to the property-test oracle).
    pub proved: u64,
    /// Wall-clock nanoseconds spent inside the equivalence checker on
    /// this rule's steps.
    pub proof_nanos: u64,
    /// Wall-clock nanoseconds spent inside the rule (side-condition
    /// checks included; uniqueness tests it triggered included).
    pub nanos: u64,
}

impl RuleStats {
    /// Accumulate another rule's counters into this one (used when
    /// aggregating stats across a batch).
    pub fn absorb(&mut self, other: &RuleStats) {
        self.attempts += other.attempts;
        self.fires += other.fires;
        self.uniqueness_tests += other.uniqueness_tests;
        self.proved += other.proved;
        self.proof_nanos += other.proof_nanos;
        self.nanos += other.nanos;
    }
}

/// Shared state threaded through every rule invocation of one optimize
/// call: the uniqueness memo, the selected test, and per-rule stats.
#[derive(Debug)]
pub struct RuleContext {
    /// Which uniqueness test(s) rules may consult.
    test: UniquenessTest,
    /// Memoized uniqueness verdicts, shared by all rules and passes.
    pub memo: UniquenessMemo,
    stats: Vec<RuleStats>,
    /// Index of the rule currently being attempted (for attributing
    /// uniqueness-test consultations).
    current: Option<usize>,
}

impl RuleContext {
    /// A fresh context for one optimize call.
    pub fn new(test: UniquenessTest) -> RuleContext {
        RuleContext {
            test,
            memo: UniquenessMemo::new(),
            stats: Vec::new(),
            current: None,
        }
    }

    /// The uniqueness test selection rules should honour.
    pub fn test(&self) -> UniquenessTest {
        self.test
    }

    /// Register a rule for stats tracking; returns its slot. Idempotent
    /// per name.
    pub fn register(&mut self, rule: &str) -> usize {
        if let Some(i) = self.stats.iter().position(|s| s.rule == rule) {
            return i;
        }
        self.stats.push(RuleStats {
            rule: rule.to_string(),
            ..RuleStats::default()
        });
        self.stats.len() - 1
    }

    /// Run the symbolic equivalence checker on a fired step's
    /// before/after pair, attributing the checker time — and a `proved`
    /// tally on success — to `rule`. Called by the fixpoint driver once
    /// per step whose justification does not already carry a proof.
    pub fn prove_step(
        &mut self,
        rule: &str,
        before: &BoundQuery,
        after: &BoundQuery,
    ) -> ProofStatus {
        let slot = self.register(rule);
        let started = Instant::now();
        let status = check_equiv(before, after).into_status();
        let stats = &mut self.stats[slot];
        stats.proof_nanos += started.elapsed().as_nanos() as u64;
        stats.proved += u64::from(status.is_proved());
        status
    }

    /// In-rule variant of [`RuleContext::prove_step`]: check a
    /// *prospective* rewrite, attributed to the rule currently being
    /// attempted. Proof-gated rules (DISTINCT pushdown) call this to
    /// decide whether to fire at all; only the checker time is recorded
    /// here — the `proved` tally is kept by the driver, which counts
    /// each *fired* step exactly once.
    pub fn prove(&mut self, before: &BoundQuery, after: &BoundQuery) -> ProofStatus {
        let started = Instant::now();
        let status = check_equiv(before, after).into_status();
        if let Some(i) = self.current {
            self.stats[i].proof_nanos += started.elapsed().as_nanos() as u64;
        }
        status
    }

    /// Tally a fired step that already carries a `Proved` status (the
    /// rule ran the checker itself as its firing gate).
    pub fn tally_proved(&mut self, rule: &str) {
        let slot = self.register(rule);
        self.stats[slot].proved += 1;
    }

    /// Memoized "is this block's result provably duplicate-free?",
    /// attributed to the rule currently being attempted.
    pub fn is_provably_unique(&mut self, spec: &BoundSpec) -> Option<String> {
        if let Some(i) = self.current {
            self.stats[i].uniqueness_tests += 1;
        }
        self.memo.is_provably_unique(spec, self.test)
    }

    /// Drive `rule` against a query node, maintaining its stats. Tries
    /// the query-level entry point first, then (for plain blocks) the
    /// spec-level one — one attempt either way.
    pub fn try_rule(
        &mut self,
        rule: &dyn RewriteRule,
        query: &BoundQuery,
    ) -> Option<(BoundQuery, Justification)> {
        let slot = self.register(rule.name());
        let started = Instant::now();
        self.current = Some(slot);
        let mut result = rule.apply_query(query, self);
        if result.is_none() {
            if let BoundQuery::Spec(spec) = query {
                result = rule
                    .apply_spec(spec, self)
                    .map(|(s, j)| (BoundQuery::Spec(Box::new(s)), j));
            }
        }
        self.current = None;
        let stats = &mut self.stats[slot];
        stats.attempts += 1;
        stats.fires += u64::from(result.is_some());
        stats.nanos += started.elapsed().as_nanos() as u64;
        result
    }

    /// Per-rule counters recorded so far, in registration order.
    pub fn stats(&self) -> &[RuleStats] {
        &self.stats
    }

    /// Consume the context, yielding its per-rule counters.
    pub fn into_stats(self) -> Vec<RuleStats> {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    #[derive(Debug)]
    struct NeverFires;
    impl RewriteRule for NeverFires {
        fn name(&self) -> &'static str {
            "never-fires"
        }
        fn theorem(&self) -> &'static str {
            "none"
        }
    }

    fn bound(sql: &str) -> BoundQuery {
        let db = supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn attempts_are_counted_even_when_nothing_fires() {
        let mut cx = RuleContext::new(UniquenessTest::Both);
        let q = bound("SELECT S.SNO FROM SUPPLIER S");
        assert!(cx.try_rule(&NeverFires, &q).is_none());
        assert!(cx.try_rule(&NeverFires, &q).is_none());
        let stats = cx.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].rule, "never-fires");
        assert_eq!((stats[0].attempts, stats[0].fires), (2, 0));
    }

    #[test]
    fn uniqueness_consults_attribute_to_the_active_rule() {
        #[derive(Debug)]
        struct AsksTwice;
        impl RewriteRule for AsksTwice {
            fn name(&self) -> &'static str {
                "asks-twice"
            }
            fn theorem(&self) -> &'static str {
                "Theorem 1"
            }
            fn apply_spec(
                &self,
                spec: &BoundSpec,
                cx: &mut RuleContext,
            ) -> Option<(BoundSpec, Justification)> {
                cx.is_provably_unique(spec);
                cx.is_provably_unique(spec);
                None
            }
        }
        let mut cx = RuleContext::new(UniquenessTest::Both);
        let q = bound("SELECT DISTINCT S.SNO FROM SUPPLIER S");
        assert!(cx.try_rule(&AsksTwice, &q).is_none());
        let stats = cx.stats();
        assert_eq!(stats[0].uniqueness_tests, 2);
        // The second consult was a memo replay, not a fresh analysis.
        assert_eq!((cx.memo.computed, cx.memo.reused), (1, 1));
    }

    #[test]
    fn register_is_idempotent_per_name() {
        let mut cx = RuleContext::new(UniquenessTest::Both);
        let a = cx.register("r");
        let b = cx.register("r");
        assert_eq!(a, b);
        assert_eq!(cx.stats().len(), 1);
    }

    #[test]
    fn rule_stats_absorb_sums_counters() {
        let mut a = RuleStats {
            rule: "r".into(),
            attempts: 1,
            fires: 1,
            uniqueness_tests: 2,
            proved: 1,
            proof_nanos: 7,
            nanos: 10,
        };
        a.absorb(&RuleStats {
            rule: "r".into(),
            attempts: 3,
            fires: 0,
            uniqueness_tests: 1,
            proved: 0,
            proof_nanos: 3,
            nanos: 5,
        });
        assert_eq!(
            (a.attempts, a.fires, a.uniqueness_tests, a.nanos),
            (4, 1, 3, 15)
        );
        assert_eq!((a.proved, a.proof_nanos), (1, 10));
    }
}
