//! The fixpoint driver: drives a registry of [`RewriteRule`]s over a
//! bound query until none fires, recording every step in a
//! [`RewriteTrace`].
//!
//! Two profiles mirror the paper's two worlds:
//!
//! * [`OptimizerOptions::relational`] — merge subqueries into joins
//!   (Theorem 2 / Corollary 1), lower set operations to `EXISTS`
//!   (Theorem 3 / Corollary 2), then drop provably redundant `DISTINCT`s
//!   (Theorem 1). This is the Starburst-style direction.
//! * [`OptimizerOptions::navigational`] — the §6 direction for IMS and
//!   pointer-based OODBs: convert joins *to* subqueries so the back-end
//!   can run first-match nested loops.
//!
//! # Driver shape
//!
//! Each **pass** is a single bottom-up traversal: set-operation operands
//! are rewritten in place first (deepest first), then every registry
//! rule is offered the node repeatedly until the node quiesces. Because
//! all the rules are local — whether a rule fires at a node depends only
//! on that node's subtree — one quiescent bottom-up pass that fires
//! nothing proves the whole tree is at fixpoint, so the driver converges
//! in `O(passes)` traversals (typically two: one that fires, one that
//! verifies quiescence) rather than the one-root-restart-per-firing
//! `O(firings × tree)` of the previous driver.

use crate::rewrite::distinct::UniquenessTest;
use crate::rewrite::{
    DistinctPushdown, DistinctRemoval, ExceptToNotExists, IntersectToExists, JoinElimination,
    JoinToSubquery, SubqueryToJoin,
};
use crate::rules::{ProofStatus, RewriteRule, RuleContext, RuleStats};
use crate::unbind::unbind_query;
use uniq_plan::BoundQuery;

/// Which rules run, and with which uniqueness test.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerOptions {
    /// Rule 1: Theorem 1 `DISTINCT` removal.
    pub remove_redundant_distinct: bool,
    /// Rule 2: Theorem 2 / Corollary 1 subquery → join.
    pub subquery_to_join: bool,
    /// Rules 3/4: `INTERSECT`/`EXCEPT` → `[NOT] EXISTS`.
    pub setops_to_exists: bool,
    /// Rule 5: §6 join → subquery (navigational back-ends).
    pub join_to_subquery: bool,
    /// Rule 6: §7 join elimination via foreign keys (future-work
    /// extension).
    pub join_elimination: bool,
    /// Rule 7: push a `DISTINCT` through a key-covered join, demoting
    /// the unprojected side to an `EXISTS` semijoin and eliding the
    /// `DISTINCT` (Corollary 1 read right-to-left). Fires only when the
    /// symbolic checker proves the pair equivalent. Off in the
    /// relational profile — it is the exact inverse of
    /// [`subquery_to_join`](OptimizerOptions::subquery_to_join)'s
    /// Corollary 1 case and the two would cycle.
    pub distinct_pushdown: bool,
    /// Aggregate elisions (`crate::agg`): key-covered `GROUP BY` becomes
    /// a no-op grouping and `COUNT(DISTINCT e)` over a duplicate-free
    /// block degrades to `COUNT(e)`. Both fire only on a symbolic proof.
    pub agg_elision: bool,
    /// Which uniqueness test(s) rules may consult.
    pub test: UniquenessTest,
    /// Upper bound on total rule firings (defensive; the rules are
    /// strictly reducing and cannot actually loop).
    pub max_steps: usize,
}

impl OptimizerOptions {
    /// The relational profile (§5): everything toward joins.
    pub fn relational() -> OptimizerOptions {
        OptimizerOptions {
            remove_redundant_distinct: true,
            subquery_to_join: true,
            setops_to_exists: true,
            join_to_subquery: false,
            join_elimination: true,
            distinct_pushdown: false,
            agg_elision: true,
            test: UniquenessTest::Both,
            max_steps: 32,
        }
    }

    /// The navigational profile (§6): everything toward nested subqueries.
    pub fn navigational() -> OptimizerOptions {
        OptimizerOptions {
            remove_redundant_distinct: true,
            subquery_to_join: false,
            setops_to_exists: true,
            join_to_subquery: true,
            join_elimination: true,
            distinct_pushdown: true,
            agg_elision: true,
            test: UniquenessTest::Both,
            max_steps: 32,
        }
    }

    /// All rules off — identity pipeline (baseline for experiments).
    pub fn disabled() -> OptimizerOptions {
        OptimizerOptions {
            remove_redundant_distinct: false,
            subquery_to_join: false,
            setops_to_exists: false,
            join_to_subquery: false,
            join_elimination: false,
            distinct_pushdown: false,
            agg_elision: false,
            test: UniquenessTest::Both,
            max_steps: 0,
        }
    }

    /// Select the uniqueness test (builder style).
    pub fn with_test(mut self, test: UniquenessTest) -> OptimizerOptions {
        self.test = test;
        self
    }

    /// Toggle the proof-gated `DISTINCT` pushdown (builder style).
    pub fn with_distinct_pushdown(mut self, on: bool) -> OptimizerOptions {
        self.distinct_pushdown = on;
        self
    }

    /// The rule registry these options select, in priority order:
    /// set-operation lowerings first (they expose blocks to the
    /// block-level rules), then join elimination, the subquery↔join
    /// pair, and `DISTINCT` removal last (the other rules can make a
    /// `DISTINCT` removable, or need to see it before it goes).
    pub fn registry(&self) -> Vec<Box<dyn RewriteRule>> {
        let mut rules: Vec<Box<dyn RewriteRule>> = Vec::new();
        if self.setops_to_exists {
            rules.push(Box::new(IntersectToExists));
            rules.push(Box::new(ExceptToNotExists));
        }
        if self.join_elimination {
            rules.push(Box::new(JoinElimination));
        }
        if self.distinct_pushdown {
            rules.push(Box::new(DistinctPushdown));
        }
        if self.subquery_to_join {
            rules.push(Box::new(SubqueryToJoin));
        }
        if self.join_to_subquery {
            rules.push(Box::new(JoinToSubquery));
        }
        if self.remove_redundant_distinct {
            rules.push(Box::new(DistinctRemoval));
        }
        rules
    }
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions::relational()
    }
}

/// One applied rewrite.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteStep {
    /// Short rule identifier (`"distinct-removal"`, …).
    pub rule: &'static str,
    /// The theorem/corollary that licensed this particular firing.
    pub theorem: &'static str,
    /// Prose justification naming the licensing theorem.
    pub why: String,
    /// Symbolically proved equivalent, or relying on the property-test
    /// oracle. Set by the driver (or by a proof-gated rule) at fire
    /// time.
    pub proof: ProofStatus,
    /// The rewritten subtree before this step, in bound form — the
    /// exact node the rule saw, retained so equivalence tooling needs
    /// no re-parse.
    pub before: BoundQuery,
    /// The rewritten subtree after this step, in bound form.
    pub after: BoundQuery,
    /// The full query before this step, rendered as SQL.
    pub sql_before: String,
    /// The full query after this step, rendered as SQL.
    pub sql_after: String,
}

/// The ordered record of everything one optimize call did: the steps,
/// the per-rule counters, and the fixpoint shape (passes, memo hits).
/// This is the object that travels up through the engine session, the
/// plan cache, `EXPLAIN`, the batch driver, and the bench report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RewriteTrace {
    /// Every step applied, in order (empty = nothing fired).
    pub steps: Vec<RewriteStep>,
    /// Per-rule counters: attempts, fires, uniqueness tests consulted,
    /// wall time — in registry order.
    pub rule_stats: Vec<RuleStats>,
    /// Bottom-up traversals the driver ran (the last one fires nothing
    /// and certifies the fixpoint).
    pub passes: u64,
    /// Uniqueness-test verdicts computed by actually running Theorem 1 /
    /// Algorithm 1 machinery during this optimize call.
    pub uniqueness_tests_computed: u64,
    /// Verdicts answered from the per-optimize memo instead (see
    /// [`crate::rewrite::UniquenessMemo`]).
    pub uniqueness_tests_memoized: u64,
}

impl RewriteTrace {
    /// Total rule firings recorded.
    pub fn fires(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// The pipeline's result.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The final query.
    pub query: BoundQuery,
    /// What happened along the way.
    pub trace: RewriteTrace,
}

impl OptimizeOutcome {
    /// Did any rule fire?
    pub fn changed(&self) -> bool {
        !self.trace.steps.is_empty()
    }

    /// The ordered steps (convenience for `self.trace.steps`).
    pub fn steps(&self) -> &[RewriteStep] {
        &self.trace.steps
    }
}

/// The rewrite engine: a rule registry plus the fixpoint driver.
#[derive(Debug)]
pub struct Optimizer {
    options: OptimizerOptions,
    rules: Vec<Box<dyn RewriteRule>>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new(OptimizerOptions::default())
    }
}

impl Optimizer {
    /// An optimizer with the registry the options select.
    pub fn new(options: OptimizerOptions) -> Optimizer {
        Optimizer {
            rules: options.registry(),
            options,
        }
    }

    /// Append a rule to the registry (after the options-selected ones).
    /// This is the extension point for new rule families: implement
    /// [`RewriteRule`], push it here — no driver surgery.
    pub fn with_rule(mut self, rule: Box<dyn RewriteRule>) -> Optimizer {
        self.rules.push(rule);
        self
    }

    /// The options this optimizer was built with.
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }

    /// Apply the registered rules to `query` until none fires.
    ///
    /// All uniqueness-test verdicts produced along the way are memoized
    /// for the duration of the call, so the Theorem 1 / Algorithm 1
    /// machinery runs at most once per distinct (block, test) pair no
    /// matter how many rules or fixpoint passes re-ask.
    pub fn optimize(&self, query: &BoundQuery) -> OptimizeOutcome {
        let mut cx = RuleContext::new(self.options.test);
        for rule in &self.rules {
            cx.register(rule.name());
        }
        let mut current = query.clone();
        let mut steps: Vec<RewriteStep> = Vec::new();
        let mut passes: u64 = 0;
        while !self.rules.is_empty() && steps.len() < self.options.max_steps {
            let fired_before = steps.len();
            passes += 1;
            current = self.run_pass(current, &|sql, _| sql, &mut cx, &mut steps);
            if steps.len() == fired_before {
                break;
            }
        }
        let (computed, memoized) = (cx.memo.computed, cx.memo.reused);
        OptimizeOutcome {
            query: current,
            trace: RewriteTrace {
                steps,
                rule_stats: cx.into_stats(),
                passes,
                uniqueness_tests_computed: computed,
                uniqueness_tests_memoized: memoized,
            },
        }
    }

    /// One bottom-up traversal. `wrap_sql` re-embeds a rewritten
    /// subtree's SQL into the full statement's SQL (second argument:
    /// whether the subtree is itself a set operation and so needs
    /// operand parentheses), so every step's before/after SQL shows the
    /// whole query however deep the firing site. It is only invoked when
    /// a step actually fires — a quiet pass never renders anything.
    fn run_pass(
        &self,
        node: BoundQuery,
        wrap_sql: &dyn Fn(String, bool) -> String,
        cx: &mut RuleContext,
        steps: &mut Vec<RewriteStep>,
    ) -> BoundQuery {
        // Children first: both operands of a set operation are brought to
        // local quiescence before their parent is offered to the rules,
        // so independent firing sites anywhere in the tree all fire
        // within this same pass.
        let mut node = match node {
            BoundQuery::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let all_kw = if all { " ALL" } else { "" };
                let wrap_left = |sql: String, setop: bool| {
                    let lhs = if setop { format!("({sql})") } else { sql };
                    wrap_sql(
                        format!("{lhs} {op}{all_kw} {}", render_operand(&right)),
                        true,
                    )
                };
                let new_left = self.run_pass(*left, &wrap_left, cx, steps);
                let wrap_right = |sql: String, setop: bool| {
                    let rhs = if setop { format!("({sql})") } else { sql };
                    wrap_sql(
                        format!("{} {op}{all_kw} {rhs}", render_operand(&new_left)),
                        true,
                    )
                };
                let new_right = self.run_pass(*right, &wrap_right, cx, steps);
                BoundQuery::SetOp {
                    op,
                    all,
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                }
            }
            other => other,
        };
        // Local quiescence: keep offering this node to the registry until
        // nothing fires (a set-op lowering can expose the node to the
        // block-level rules within the same visit).
        'quiesce: loop {
            if steps.len() >= self.options.max_steps {
                break;
            }
            for rule in &self.rules {
                if let Some((next, justification)) = cx.try_rule(rule.as_ref(), &node) {
                    // Every fired step gets a proof status: keep one a
                    // proof-gated rule attached, otherwise run the
                    // symbolic checker on the before/after pair now.
                    let justification = if justification.proof().is_some_and(|p| p.is_proved()) {
                        cx.tally_proved(rule.name());
                        justification
                    } else {
                        let status = cx.prove_step(rule.name(), &node, &next);
                        justification.with_proof(status)
                    };
                    steps.push(RewriteStep {
                        rule: rule.name(),
                        theorem: justification.theorem(),
                        why: justification.detail(),
                        proof: justification.proof().cloned().unwrap_or_default(),
                        sql_before: wrap_sql(
                            render(&node),
                            matches!(node, BoundQuery::SetOp { .. }),
                        ),
                        sql_after: wrap_sql(
                            render(&next),
                            matches!(next, BoundQuery::SetOp { .. }),
                        ),
                        before: node,
                        after: next.clone(),
                    });
                    node = next;
                    continue 'quiesce;
                }
            }
            break;
        }
        node
    }
}

fn render(q: &BoundQuery) -> String {
    unbind_query(q)
        .map(|ast| ast.to_string())
        .unwrap_or_else(|e| format!("<unprintable: {e}>"))
}

/// Render `q` in set-operation operand position: parenthesized when it
/// is itself a set operation, exactly as the printer does.
fn render_operand(q: &BoundQuery) -> String {
    match q {
        BoundQuery::SetOp { .. } => format!("({})", render(q)),
        BoundQuery::Spec(_) => render(q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Justification, RuleContext};
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::{bind_query, BoundSpec};
    use uniq_sql::{parse_query, Distinct};

    fn optimize(sql: &str, opts: OptimizerOptions) -> OptimizeOutcome {
        let db = supplier_schema().unwrap();
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        Optimizer::new(opts).optimize(&q)
    }

    #[test]
    fn example_1_distinct_removed() {
        let out = optimize(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.trace.steps.len(), 1);
        assert_eq!(out.trace.steps[0].rule, "distinct-removal");
        assert_eq!(out.trace.steps[0].theorem, "Theorem 1");
        assert_eq!(out.query.as_spec().unwrap().distinct, Distinct::All);
    }

    #[test]
    fn example_8_merge_then_distinct_stays() {
        // Corollary 1 turns ALL into DISTINCT-join; the DISTINCT is then
        // genuinely required (SNAME is not projected... SNO is, so
        // Theorem 1 fires afterwards and removes it again!).
        let out = optimize(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
            OptimizerOptions::relational(),
        );
        // Step 1: subquery-to-join (adds DISTINCT). The join result
        // projects only SUPPLIER's key: unique per (S,P) pair? No — PARTS'
        // key is not determined, so DISTINCT must stay.
        assert_eq!(out.trace.steps.len(), 1, "{:#?}", out.trace.steps);
        assert_eq!(out.trace.steps[0].rule, "subquery-to-join");
        assert_eq!(out.trace.steps[0].theorem, "Corollary 1");
        assert_eq!(out.query.as_spec().unwrap().distinct, Distinct::Distinct);
    }

    #[test]
    fn theorem_2_merge_keeps_all_semantics() {
        let out = optimize(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
             WHERE S.SNAME = :NAME AND EXISTS \
             (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PNO)",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.trace.steps.len(), 1);
        assert_eq!(out.trace.steps[0].rule, "subquery-to-join");
        assert_eq!(out.trace.steps[0].theorem, "Theorem 2");
        assert_eq!(out.query.as_spec().unwrap().distinct, Distinct::All);
        assert!(out.trace.steps[0]
            .sql_after
            .contains("FROM SUPPLIER S, PARTS P"));
    }

    #[test]
    fn example_9_chain_intersect_then_block_rules() {
        let out = optimize(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT \
             SELECT ALL A.SNO FROM AGENTS A \
             WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
            OptimizerOptions::relational(),
        );
        assert!(out.changed());
        assert_eq!(out.trace.steps[0].rule, "intersect-to-exists");
        // The paper notes the resulting EXISTS can subsequently convert to
        // a join (Corollary 1, since S.SNO is SUPPLIER's key) — the
        // pipeline chains exactly that, within a single pass: the lowered
        // block quiesces at its node before the pass ends.
        assert_eq!(out.trace.steps[1].rule, "subquery-to-join");
        let spec = out.query.as_spec().unwrap();
        assert_eq!(spec.from.len(), 2);
        assert_eq!(spec.distinct, Distinct::Distinct);
    }

    #[test]
    fn navigational_profile_inverts_direction() {
        let out = optimize(
            "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
             FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
            OptimizerOptions::navigational(),
        );
        assert_eq!(out.trace.steps[0].rule, "join-to-subquery");
        assert!(out.trace.steps[0].sql_after.contains("EXISTS"));
        assert_eq!(out.query.as_spec().unwrap().from.len(), 1);
    }

    #[test]
    fn disabled_profile_is_identity() {
        let out = optimize(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 1",
            OptimizerOptions::disabled(),
        );
        assert!(!out.changed());
        assert_eq!(out.trace.passes, 0);
    }

    #[test]
    fn steps_render_sql_before_and_after() {
        let out = optimize(
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = :H",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.trace.steps.len(), 1);
        assert!(
            out.trace.steps[0].sql_before.starts_with("SELECT DISTINCT"),
            "{}",
            out.trace.steps[0].sql_before
        );
        assert!(
            out.trace.steps[0].sql_after.starts_with("SELECT ALL"),
            "{}",
            out.trace.steps[0].sql_after
        );
    }

    #[test]
    fn uniqueness_tests_run_once_per_block() {
        // Two EXISTS conjuncts, neither merged by Theorem 2, outer not
        // provably unique: the Corollary 1 check asks about the same
        // outer block once per conjunct — the second ask must come from
        // the memo, not a fresh Algorithm 1 run.
        let out = optimize(
            "SELECT ALL S.SNAME FROM SUPPLIER S \
             WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO) \
             AND EXISTS (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO)",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.trace.uniqueness_tests_computed, 1, "{out:#?}");
        assert!(out.trace.uniqueness_tests_memoized >= 1, "{out:#?}");
    }

    #[test]
    fn set_op_operands_are_optimized_recursively() {
        // INTERSECT ALL with a DISTINCT left operand: the bottom-up pass
        // first simplifies the operand in place (its DISTINCT is
        // redundant — SNO is SUPPLIER's key), then lowers the INTERSECT
        // ALL at the parent because the left operand is still provably
        // duplicate-free.
        let out = optimize(
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S \
             INTERSECT ALL \
             SELECT ALL A.SNO, A.ANAME FROM AGENTS A",
            OptimizerOptions::relational(),
        );
        assert!(out.changed());
        assert_eq!(out.trace.steps[0].rule, "distinct-removal");
        assert!(out
            .trace
            .steps
            .iter()
            .any(|s| s.rule == "intersect-to-exists"));
        // The operand firing's SQL still shows the full INTERSECT query.
        assert!(
            out.trace.steps[0].sql_before.contains("INTERSECT"),
            "{}",
            out.trace.steps[0].sql_before
        );
    }

    #[test]
    fn independent_sites_converge_in_one_firing_pass() {
        // Four independent rewrite sites (each UNION ALL operand carries
        // its own redundant DISTINCT). The bottom-up driver must fire all
        // of them in the first pass and certify the fixpoint in the
        // second — O(passes), not one root-restart per firing.
        let out = optimize(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             UNION ALL \
             SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Ottawa' \
             UNION ALL \
             SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Hull' \
             UNION ALL \
             SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.BUDGET = 7",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.trace.steps.len(), 4, "{:#?}", out.trace.steps);
        assert!(out.trace.steps.iter().all(|s| s.rule == "distinct-removal"));
        assert_eq!(out.trace.passes, 2, "{:#?}", out.trace);
    }

    #[test]
    fn trace_records_per_rule_stats() {
        let out = optimize(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            OptimizerOptions::relational(),
        );
        let distinct = out
            .trace
            .rule_stats
            .iter()
            .find(|s| s.rule == "distinct-removal")
            .expect("stats row for distinct-removal");
        assert_eq!(distinct.fires, 1);
        assert!(distinct.attempts >= 1);
        assert!(distinct.uniqueness_tests >= 1);
        // Every registered rule has a stats row even if it never fired.
        assert!(out
            .trace
            .rule_stats
            .iter()
            .any(|s| s.rule == "join-elimination" && s.fires == 0));
    }

    #[test]
    fn custom_rules_register_through_with_rule() {
        // A rule family added from outside the crate: force every
        // DISTINCT projection (trivially sound in reverse — this is just
        // an extensibility smoke test).
        #[derive(Debug)]
        struct ForceDistinct;
        impl crate::rules::RewriteRule for ForceDistinct {
            fn name(&self) -> &'static str {
                "force-distinct"
            }
            fn theorem(&self) -> &'static str {
                "test-only"
            }
            fn apply_spec(
                &self,
                spec: &BoundSpec,
                _cx: &mut RuleContext,
            ) -> Option<(BoundSpec, Justification)> {
                if spec.distinct == Distinct::Distinct {
                    return None;
                }
                let mut out = spec.clone();
                out.distinct = Distinct::Distinct;
                Some((out, Justification::new("test-only", "forced DISTINCT")))
            }
        }
        let db = supplier_schema().unwrap();
        let q = bind_query(
            db.catalog(),
            &parse_query("SELECT ALL S.SNAME FROM SUPPLIER S").unwrap(),
        )
        .unwrap();
        let opt = Optimizer::new(OptimizerOptions::disabled()).with_rule(Box::new(ForceDistinct));
        // `disabled()` zeroes max_steps; re-enable the budget only.
        let mut options = OptimizerOptions::disabled();
        options.max_steps = 8;
        let opt = Optimizer { options, ..opt };
        let out = opt.optimize(&q);
        assert_eq!(out.trace.steps.len(), 1);
        assert_eq!(out.trace.steps[0].rule, "force-distinct");
        assert_eq!(out.query.as_spec().unwrap().distinct, Distinct::Distinct);
    }
}
