//! The rewrite pipeline: applies the §5/§6 rules to a bound query until a
//! fixpoint, recording each step.
//!
//! Two profiles mirror the paper's two worlds:
//!
//! * [`OptimizerOptions::relational`] — merge subqueries into joins
//!   (Theorem 2 / Corollary 1), lower set operations to `EXISTS`
//!   (Theorem 3 / Corollary 2), then drop provably redundant `DISTINCT`s
//!   (Theorem 1). This is the Starburst-style direction.
//! * [`OptimizerOptions::navigational`] — the §6 direction for IMS and
//!   pointer-based OODBs: convert joins *to* subqueries so the back-end
//!   can run first-match nested loops.

use crate::rewrite::distinct::{remove_redundant_distinct_memo, UniquenessMemo, UniquenessTest};
use crate::rewrite::{
    eliminate_join, except_to_not_exists_memo, intersect_to_exists_memo, join_to_subquery,
    subquery_to_join_memo,
};
use crate::unbind::unbind_query;
use uniq_plan::{BoundQuery, BoundSpec};

/// Which rules run, and with which uniqueness test.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerOptions {
    /// Rule 1: Theorem 1 `DISTINCT` removal.
    pub remove_redundant_distinct: bool,
    /// Rule 2: Theorem 2 / Corollary 1 subquery → join.
    pub subquery_to_join: bool,
    /// Rules 3/4: `INTERSECT`/`EXCEPT` → `[NOT] EXISTS`.
    pub setops_to_exists: bool,
    /// Rule 5: §6 join → subquery (navigational back-ends).
    pub join_to_subquery: bool,
    /// Rule 6: §7 join elimination via foreign keys (future-work
    /// extension).
    pub join_elimination: bool,
    /// Which uniqueness test(s) rules may consult.
    pub test: UniquenessTest,
    /// Upper bound on rule applications (defensive; the rules are
    /// strictly reducing and cannot actually loop).
    pub max_steps: usize,
}

impl OptimizerOptions {
    /// The relational profile (§5): everything toward joins.
    pub fn relational() -> OptimizerOptions {
        OptimizerOptions {
            remove_redundant_distinct: true,
            subquery_to_join: true,
            setops_to_exists: true,
            join_to_subquery: false,
            join_elimination: true,
            test: UniquenessTest::Both,
            max_steps: 32,
        }
    }

    /// The navigational profile (§6): everything toward nested subqueries.
    pub fn navigational() -> OptimizerOptions {
        OptimizerOptions {
            remove_redundant_distinct: true,
            subquery_to_join: false,
            setops_to_exists: true,
            join_to_subquery: true,
            join_elimination: true,
            test: UniquenessTest::Both,
            max_steps: 32,
        }
    }

    /// All rules off — identity pipeline (baseline for experiments).
    pub fn disabled() -> OptimizerOptions {
        OptimizerOptions {
            remove_redundant_distinct: false,
            subquery_to_join: false,
            setops_to_exists: false,
            join_to_subquery: false,
            join_elimination: false,
            test: UniquenessTest::Both,
            max_steps: 0,
        }
    }

    /// Select the uniqueness test (builder style).
    pub fn with_test(mut self, test: UniquenessTest) -> OptimizerOptions {
        self.test = test;
        self
    }
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions::relational()
    }
}

/// One applied rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteStep {
    /// Short rule identifier (`"distinct-removal"`, …).
    pub rule: &'static str,
    /// Prose justification naming the licensing theorem.
    pub why: String,
    /// The query after this step, rendered as SQL.
    pub sql_after: String,
}

/// The pipeline's result.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The final query.
    pub query: BoundQuery,
    /// Every step applied, in order (empty = nothing fired).
    pub steps: Vec<RewriteStep>,
    /// Uniqueness-test verdicts computed by actually running Theorem 1 /
    /// Algorithm 1 machinery during this optimize call.
    pub uniqueness_tests_computed: u64,
    /// Verdicts answered from the per-optimize memo instead (see
    /// [`UniquenessMemo`]).
    pub uniqueness_tests_memoized: u64,
}

impl OptimizeOutcome {
    /// Did any rule fire?
    pub fn changed(&self) -> bool {
        !self.steps.is_empty()
    }
}

/// The rewrite engine.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    options: OptimizerOptions,
}

impl Optimizer {
    /// An optimizer with the given options.
    pub fn new(options: OptimizerOptions) -> Optimizer {
        Optimizer { options }
    }

    /// Apply the enabled rules to `query` until none fires.
    ///
    /// All uniqueness-test verdicts produced along the way are memoized
    /// for the duration of the call, so the Theorem 1 / Algorithm 1
    /// machinery runs at most once per distinct (block, test) pair no
    /// matter how many rules or fixpoint passes re-ask.
    pub fn optimize(&self, query: &BoundQuery) -> OptimizeOutcome {
        let mut current = query.clone();
        let mut steps = Vec::new();
        let mut memo = UniquenessMemo::new();
        for _ in 0..self.options.max_steps {
            match self.apply_once(&current, &mut memo) {
                Some((next, rule, why)) => {
                    let sql_after = unbind_query(&next)
                        .map(|ast| ast.to_string())
                        .unwrap_or_else(|e| format!("<unprintable: {e}>"));
                    steps.push(RewriteStep {
                        rule,
                        why,
                        sql_after,
                    });
                    current = next;
                }
                None => break,
            }
        }
        OptimizeOutcome {
            query: current,
            steps,
            uniqueness_tests_computed: memo.computed,
            uniqueness_tests_memoized: memo.reused,
        }
    }

    fn apply_once(
        &self,
        q: &BoundQuery,
        memo: &mut UniquenessMemo,
    ) -> Option<(BoundQuery, &'static str, String)> {
        // Set-operation rules first: they can expose a block to the
        // block-level rules.
        if self.options.setops_to_exists {
            if let Some((next, why)) = intersect_to_exists_memo(q, self.options.test, memo) {
                return Some((next, "intersect-to-exists", why));
            }
            if let Some((next, why)) = except_to_not_exists_memo(q, self.options.test, memo) {
                return Some((next, "except-to-not-exists", why));
            }
        }
        // Recurse into set-operation operands.
        if let BoundQuery::SetOp {
            op,
            all,
            left,
            right,
        } = q
        {
            if let Some((l, rule, why)) = self.apply_once(left, memo) {
                return Some((
                    BoundQuery::SetOp {
                        op: *op,
                        all: *all,
                        left: Box::new(l),
                        right: right.clone(),
                    },
                    rule,
                    why,
                ));
            }
            if let Some((r, rule, why)) = self.apply_once(right, memo) {
                return Some((
                    BoundQuery::SetOp {
                        op: *op,
                        all: *all,
                        left: left.clone(),
                        right: Box::new(r),
                    },
                    rule,
                    why,
                ));
            }
            return None;
        }
        let spec = q.as_spec()?;
        if let Some((next, rule, why)) = self.apply_spec(spec, memo) {
            return Some((BoundQuery::Spec(Box::new(next)), rule, why));
        }
        None
    }

    fn apply_spec(
        &self,
        spec: &BoundSpec,
        memo: &mut UniquenessMemo,
    ) -> Option<(BoundSpec, &'static str, String)> {
        if self.options.join_elimination {
            if let Some((next, why)) = eliminate_join(spec) {
                return Some((next, "join-elimination", why));
            }
        }
        if self.options.subquery_to_join {
            if let Some((next, why)) = subquery_to_join_memo(spec, self.options.test, memo) {
                return Some((next, "subquery-to-join", why));
            }
        }
        if self.options.join_to_subquery {
            if let Some((next, why)) = join_to_subquery(spec) {
                return Some((next, "join-to-subquery", why));
            }
        }
        if self.options.remove_redundant_distinct {
            if let Some((next, why)) = remove_redundant_distinct_memo(spec, self.options.test, memo)
            {
                return Some((next, "distinct-removal", why));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::{parse_query, Distinct};

    fn optimize(sql: &str, opts: OptimizerOptions) -> OptimizeOutcome {
        let db = supplier_schema().unwrap();
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        Optimizer::new(opts).optimize(&q)
    }

    #[test]
    fn example_1_distinct_removed() {
        let out = optimize(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.steps.len(), 1);
        assert_eq!(out.steps[0].rule, "distinct-removal");
        assert_eq!(out.query.as_spec().unwrap().distinct, Distinct::All);
    }

    #[test]
    fn example_8_merge_then_distinct_stays() {
        // Corollary 1 turns ALL into DISTINCT-join; the DISTINCT is then
        // genuinely required (SNAME is not projected... SNO is, so
        // Theorem 1 fires afterwards and removes it again!).
        let out = optimize(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
            OptimizerOptions::relational(),
        );
        // Step 1: subquery-to-join (adds DISTINCT). The join result
        // projects only SUPPLIER's key: unique per (S,P) pair? No — PARTS'
        // key is not determined, so DISTINCT must stay.
        assert_eq!(out.steps.len(), 1, "{:#?}", out.steps);
        assert_eq!(out.steps[0].rule, "subquery-to-join");
        assert_eq!(out.query.as_spec().unwrap().distinct, Distinct::Distinct);
    }

    #[test]
    fn theorem_2_merge_keeps_all_semantics() {
        let out = optimize(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
             WHERE S.SNAME = :NAME AND EXISTS \
             (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PNO)",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.steps.len(), 1);
        assert_eq!(out.steps[0].rule, "subquery-to-join");
        assert_eq!(out.query.as_spec().unwrap().distinct, Distinct::All);
        assert!(out.steps[0].sql_after.contains("FROM SUPPLIER S, PARTS P"));
    }

    #[test]
    fn example_9_chain_intersect_then_block_rules() {
        let out = optimize(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT \
             SELECT ALL A.SNO FROM AGENTS A \
             WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
            OptimizerOptions::relational(),
        );
        assert!(out.changed());
        assert_eq!(out.steps[0].rule, "intersect-to-exists");
        // The paper notes the resulting EXISTS can subsequently convert to
        // a join (Corollary 1, since S.SNO is SUPPLIER's key) — the
        // pipeline chains exactly that.
        assert_eq!(out.steps[1].rule, "subquery-to-join");
        let spec = out.query.as_spec().unwrap();
        assert_eq!(spec.from.len(), 2);
        assert_eq!(spec.distinct, Distinct::Distinct);
    }

    #[test]
    fn navigational_profile_inverts_direction() {
        let out = optimize(
            "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
             FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
            OptimizerOptions::navigational(),
        );
        assert_eq!(out.steps[0].rule, "join-to-subquery");
        assert!(out.steps[0].sql_after.contains("EXISTS"));
        assert_eq!(out.query.as_spec().unwrap().from.len(), 1);
    }

    #[test]
    fn disabled_profile_is_identity() {
        let out = optimize(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 1",
            OptimizerOptions::disabled(),
        );
        assert!(!out.changed());
    }

    #[test]
    fn steps_render_sql() {
        let out = optimize(
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = :H",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.steps.len(), 1);
        assert!(
            out.steps[0].sql_after.starts_with("SELECT ALL"),
            "{}",
            out.steps[0].sql_after
        );
    }

    #[test]
    fn uniqueness_tests_run_once_per_block() {
        // Two EXISTS conjuncts, neither merged by Theorem 2, outer not
        // provably unique: the Corollary 1 check asks about the same
        // outer block once per conjunct — the second ask must come from
        // the memo, not a fresh Algorithm 1 run.
        let out = optimize(
            "SELECT ALL S.SNAME FROM SUPPLIER S \
             WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO) \
             AND EXISTS (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO)",
            OptimizerOptions::relational(),
        );
        assert_eq!(out.uniqueness_tests_computed, 1, "{out:#?}");
        assert!(out.uniqueness_tests_memoized >= 1, "{out:#?}");
    }

    #[test]
    fn set_op_operands_are_optimized_recursively() {
        // INTERSECT ALL with neither operand unique is not lowered, but
        // the DISTINCT inside the left operand is removable.
        let out = optimize(
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S \
             INTERSECT ALL \
             SELECT ALL A.SNO, A.ANAME FROM AGENTS A",
            OptimizerOptions::relational(),
        );
        // Left operand is unique via its key → INTERSECT ALL lowering
        // fires first (left operand is DISTINCT-declared).
        assert!(out.changed());
    }
}
