//! Hand-rolled hashing, used for plan-cache fingerprints.
//!
//! The workspace builds with no external dependencies, so this provides
//! the one hash the serving layer needs: FNV-1a in 64 bits. It is not a
//! cryptographic hash — fingerprint collisions are tolerated by design
//! (the plan cache stores the canonical SQL text alongside the plan and
//! verifies it on every hit).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// A hasher in its initial state.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian bytes, so values and raw bytes
    /// never alias accidentally only if callers keep domains separate).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Standard published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn write_u64_changes_state() {
        let mut a = Fnv64::new();
        let mut b = Fnv64::new();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }
}
