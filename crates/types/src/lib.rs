//! Foundational types shared by every crate in the `uniqueness` workspace.
//!
//! This crate implements the semantic bedrock of Paulley & Larson's
//! *Exploiting Uniqueness in Query Optimization* (ICDE 1994):
//!
//! * [`Tri`] — SQL's three-valued logic (true / false / unknown) together
//!   with the paper's *interpretation operators* ⌈P⌉ (true-interpreted) and
//!   ⌊P⌋ (false-interpreted) from Table 2.
//! * [`Value`] — runtime values including `NULL`, with the two distinct
//!   equality notions the paper is careful to separate: the `WHERE`-clause
//!   comparison [`Value::sql_eq`] (where `NULL = NULL` is *unknown*) and the
//!   null-aware equivalence operator `=̇` [`Value::null_eq`] (where
//!   `NULL =̇ NULL` is *true*) used by `DISTINCT`, set operators, `GROUP BY`
//!   and functional dependencies.
//! * [`DataType`] — the small scalar type system of the paper's SQL2 subset.
//! * Identifier newtypes ([`TableName`], [`ColumnName`], [`ColRef`]) shared
//!   by the parser, catalog, planner and analyzers.
//! * [`Error`] — the workspace-wide error type.

pub mod bitmap;
pub mod error;
pub mod hash;
pub mod ident;
pub mod tri;
pub mod value;

pub use bitmap::NullBitmap;
pub use error::{Error, Result};
pub use hash::{fnv64, Fnv64};
pub use ident::{ColRef, ColumnName, HostVarName, TableName};
pub use tri::Tri;
pub use value::{DataType, Value};
