//! The workspace-wide error type.
//!
//! One enum covers lexing/parsing, binding, constraint violations and
//! execution; each crate constructs the variants relevant to its layer.
//! Implemented by hand (no `thiserror`) to stay within the approved
//! dependency set.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Any error raised while parsing, planning, analyzing or executing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The lexer met a character or token it cannot form a token from.
    Lex { pos: usize, message: String },
    /// The parser met an unexpected token.
    Parse { pos: usize, message: String },
    /// Name resolution failed (unknown table/column, ambiguous reference).
    Bind(String),
    /// A comparison or operation was attempted between incompatible types.
    TypeMismatch { left: String, right: String },
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist in its table.
    UnknownColumn { table: String, column: String },
    /// DDL attempted to create a table that already exists.
    DuplicateTable(String),
    /// A row violates a table constraint (check / key / not-null).
    ConstraintViolation { table: String, message: String },
    /// A host variable had no binding at execution time.
    UnboundHostVar(String),
    /// Set operation operands are not union-compatible.
    NotUnionCompatible { left: usize, right: usize },
    /// Any other invariant violation (planner/executor internal error).
    Internal(String),
}

impl Error {
    /// Shorthand for an internal invariant violation.
    pub fn internal(msg: impl Into<String>) -> Error {
        Error::Internal(msg.into())
    }

    /// Shorthand for a binder error.
    pub fn bind(msg: impl Into<String>) -> Error {
        Error::Bind(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            Error::Parse { pos, message } => write!(f, "parse error at byte {pos}: {message}"),
            Error::Bind(m) => write!(f, "binding error: {m}"),
            Error::TypeMismatch { left, right } => {
                write!(f, "type mismatch: cannot compare {left} with {right}")
            }
            Error::UnknownTable(t) => write!(f, "unknown table {t}"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            Error::DuplicateTable(t) => write!(f, "table {t} already exists"),
            Error::ConstraintViolation { table, message } => {
                write!(f, "constraint violation on {table}: {message}")
            }
            Error::UnboundHostVar(h) => write!(f, "host variable :{h} has no binding"),
            Error::NotUnionCompatible { left, right } => write!(
                f,
                "operands are not union-compatible ({left} vs {right} columns)"
            ),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownColumn {
            table: "SUPPLIER".into(),
            column: "XYZ".into(),
        };
        assert_eq!(e.to_string(), "unknown column SUPPLIER.XYZ");
        let e = Error::UnboundHostVar("PARTNO".into());
        assert!(e.to_string().contains(":PARTNO"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
