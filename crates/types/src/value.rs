//! Runtime values and the two SQL equality notions.
//!
//! The paper hinges on the distinction between comparing values inside a
//! `WHERE` clause (three-valued, `NULL = NULL` is *unknown*) and comparing
//! whole tuples for duplicate elimination, set operators and functional
//! dependencies (two-valued, `NULL =̇ NULL` is *true* — the `=̇` operator of
//! the paper's Table 2). [`Value`] exposes both as [`Value::sql_eq`] and
//! [`Value::null_eq`].

use crate::error::{Error, Result};
use crate::tri::Tri;
use std::cmp::Ordering;

/// Scalar data types of the paper's SQL2 subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INTEGER`).
    Int,
    /// Variable-length character string (`VARCHAR`).
    Str,
    /// Boolean — used internally for predicate results, not declarable.
    Bool,
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DataType::Int => "INTEGER",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOLEAN",
        })
    }
}

/// A runtime SQL value, possibly `NULL`.
///
/// `Value` intentionally does **not** implement `PartialOrd`/`Ord` directly
/// for SQL comparisons; use [`Value::sql_cmp`] (three-valued, `WHERE`
/// semantics) or [`Value::null_cmp`] (total order with `NULL` as a distinct
/// smallest value, used by sorts and duplicate elimination).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// The SQL null value.
    Null,
    /// An integer value.
    Int(i64),
    /// A string value.
    Str(String),
    /// A boolean value (internal use).
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Returns `true` iff this value is `NULL`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's data type, or `None` for `NULL` (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Compare two non-null values of the same type.
    ///
    /// Returns an error on a type mismatch — the binder is expected to have
    /// rejected ill-typed comparisons, so hitting this at runtime indicates
    /// a planning bug rather than bad data.
    fn cmp_known(&self, other: &Value) -> Result<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            _ => Err(Error::TypeMismatch {
                left: format!("{self}"),
                right: format!("{other}"),
            }),
        }
    }

    /// Three-valued comparison, as used in `WHERE` clauses.
    ///
    /// If either operand is `NULL` the result is `None` (unknown);
    /// otherwise `Some(ordering)`.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>> {
        if self.is_null() || other.is_null() {
            return Ok(None);
        }
        self.cmp_known(other).map(Some)
    }

    /// Three-valued equality: the SQL `=` operator of a `WHERE` clause.
    ///
    /// `NULL = anything` is [`Tri::Unknown`].
    pub fn sql_eq(&self, other: &Value) -> Result<Tri> {
        Ok(match self.sql_cmp(other)? {
            None => Tri::Unknown,
            Some(o) => Tri::from_bool(o == Ordering::Equal),
        })
    }

    /// The paper's null-aware equivalence `=̇` (Table 2):
    /// `(X IS NULL AND Y IS NULL) OR X = Y`.
    ///
    /// This is the equality used by `SELECT DISTINCT`, `INTERSECT`/`EXCEPT`,
    /// `GROUP BY`/`ORDER BY`, and by functional dependencies (Definition 1).
    /// It is two-valued: two `NULL`s *are* equivalent.
    pub fn null_eq(&self, other: &Value) -> Result<bool> {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ok(true),
            (true, false) | (false, true) => Ok(false),
            (false, false) => Ok(self.cmp_known(other)? == Ordering::Equal),
        }
    }

    /// Total order used by sorts and sort-based duplicate elimination:
    /// `NULL` sorts before every non-null value, and `NULL =̇ NULL`.
    ///
    /// Consistent with [`Value::null_eq`]: `null_cmp` returns `Equal`
    /// exactly when `null_eq` returns `true`.
    pub fn null_cmp(&self, other: &Value) -> Result<Ordering> {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ok(Ordering::Equal),
            (true, false) => Ok(Ordering::Less),
            (false, true) => Ok(Ordering::Greater),
            (false, false) => self.cmp_known(other),
        }
    }

    /// Extract an integer, erroring on any other variant.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error::TypeMismatch {
                left: "INTEGER".into(),
                right: format!("{other}"),
            }),
        }
    }

    /// Extract a string slice, erroring on any other variant.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::TypeMismatch {
                left: "VARCHAR".into(),
                right: format!("{other}"),
            }),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Canonical total order for containers (`BTreeMap` keys, sorts):
/// `NULL` first, then by type rank (`Bool < Int < Str`), then by payload.
/// Agrees with [`Value::null_cmp`] whenever that succeeds, and with the
/// structural `Eq` everywhere — so `cmp(a, b) == Equal ⇔ a.null_eq(b)`
/// for same-typed values.
impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Compare two tuples (slices of values) under the `=̇` equivalence of the
/// paper's equation (1): tuples are equivalent iff every pair of
/// corresponding attributes is `null_eq`.
pub fn tuple_null_eq(a: &[Value], b: &[Value]) -> Result<bool> {
    if a.len() != b.len() {
        return Ok(false);
    }
    for (x, y) in a.iter().zip(b) {
        if !x.null_eq(y)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Total lexicographic order on tuples under [`Value::null_cmp`].
pub fn tuple_null_cmp(a: &[Value], b: &[Value]) -> Result<Ordering> {
    for (x, y) in a.iter().zip(b) {
        match x.null_cmp(y)? {
            Ordering::Equal => continue,
            o => return Ok(o),
        }
    }
    Ok(a.len().cmp(&b.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_eq_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Null).unwrap(), Tri::Unknown);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)).unwrap(), Tri::Unknown);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null).unwrap(), Tri::Unknown);
    }

    #[test]
    fn sql_eq_known_values() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)).unwrap(), Tri::True);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)).unwrap(), Tri::False);
        assert_eq!(Value::str("a").sql_eq(&Value::str("a")).unwrap(), Tri::True);
    }

    #[test]
    fn null_eq_treats_nulls_as_equivalent() {
        assert!(Value::Null.null_eq(&Value::Null).unwrap());
        assert!(!Value::Null.null_eq(&Value::Int(1)).unwrap());
        assert!(!Value::Int(1).null_eq(&Value::Null).unwrap());
        assert!(Value::Int(7).null_eq(&Value::Int(7)).unwrap());
    }

    #[test]
    fn null_cmp_sorts_null_first_and_matches_null_eq() {
        assert_eq!(
            Value::Null.null_cmp(&Value::Int(i64::MIN)).unwrap(),
            Ordering::Less
        );
        assert_eq!(Value::Null.null_cmp(&Value::Null).unwrap(), Ordering::Equal);
        let vals = [Value::Null, Value::Int(0), Value::Int(1)];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    a.null_cmp(b).unwrap() == Ordering::Equal,
                    a.null_eq(b).unwrap()
                );
            }
        }
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(Value::Int(1).sql_eq(&Value::str("x")).is_err());
        assert!(Value::Int(1).null_eq(&Value::str("x")).is_err());
    }

    #[test]
    fn tuple_equivalence_matches_paper_equation_1() {
        let a = [Value::Int(1), Value::Null, Value::str("x")];
        let b = [Value::Int(1), Value::Null, Value::str("x")];
        let c = [Value::Int(1), Value::Int(2), Value::str("x")];
        assert!(tuple_null_eq(&a, &b).unwrap());
        assert!(!tuple_null_eq(&a, &c).unwrap());
    }

    #[test]
    fn tuple_order_is_total_and_consistent() {
        let a = [Value::Null, Value::Int(1)];
        let b = [Value::Int(0), Value::Null];
        assert_eq!(tuple_null_cmp(&a, &b).unwrap(), Ordering::Less);
        assert_eq!(tuple_null_cmp(&b, &a).unwrap(), Ordering::Greater);
        assert_eq!(tuple_null_cmp(&a, &a).unwrap(), Ordering::Equal);
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::str("O'Brien").to_string(), "'O''Brien'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }
}
