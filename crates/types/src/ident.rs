//! Identifier newtypes.
//!
//! SQL identifiers in this workspace are case-insensitive and normalized to
//! upper case at construction, matching the SQL2 treatment of regular
//! (unquoted) identifiers. Using distinct newtypes for table names, column
//! names and host variables keeps the parser, catalog and analyzers from
//! mixing them up.

use std::borrow::Borrow;
use std::fmt;

macro_rules! ident_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(String);

        impl $name {
            /// Construct from any string; normalized to upper case.
            pub fn new(s: impl AsRef<str>) -> Self {
                $name(s.as_ref().to_ascii_uppercase())
            }

            /// The normalized identifier text.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name::new(s)
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

ident_newtype!(
    /// The name of a base table (or of a range variable / correlation name).
    TableName
);
ident_newtype!(
    /// The name of a column.
    ColumnName
);
ident_newtype!(
    /// The name of a host variable (`:SUPPLIER-NO` in the paper's examples).
    HostVarName
);

/// A possibly-qualified column reference as written in a query
/// (`S.SNO` or just `SNO`); resolution to a concrete table/column happens
/// in the binder.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Optional qualifier: a table name or correlation name.
    pub qualifier: Option<TableName>,
    /// The column name.
    pub column: ColumnName,
}

impl ColRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<ColumnName>) -> ColRef {
        ColRef {
            qualifier: None,
            column: column.into(),
        }
    }

    /// A qualified reference `qualifier.column`.
    pub fn qualified(qualifier: impl Into<TableName>, column: impl Into<ColumnName>) -> ColRef {
        ColRef {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_normalize_to_upper_case() {
        assert_eq!(TableName::new("supplier"), TableName::new("SUPPLIER"));
        assert_eq!(ColumnName::new("sno").as_str(), "SNO");
    }

    #[test]
    fn colref_display() {
        assert_eq!(ColRef::qualified("s", "sno").to_string(), "S.SNO");
        assert_eq!(ColRef::bare("pno").to_string(), "PNO");
    }

    #[test]
    fn newtypes_are_distinct_types() {
        fn takes_table(_: TableName) {}
        takes_table(TableName::new("T"));
        // ColumnName would not compile here — the point of the newtypes.
    }
}
