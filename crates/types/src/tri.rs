//! SQL three-valued logic.
//!
//! SQL predicates evaluate to one of *true*, *false* or *unknown*; the
//! paper's Table 2 defines how an unknown outcome is folded back into a
//! two-valued decision depending on context:
//!
//! | notation | name              | SQL reading                                |
//! |----------|-------------------|--------------------------------------------|
//! | `P(x)`   | undefined         | `x IS NOT NULL ⇒ P(x)` (no interpretation) |
//! | `⌈P(x)⌉` | true-interpreted  | `x IS NULL OR P(x)`                        |
//! | `⌊P(x)⌋` | false-interpreted | `x IS NOT NULL AND P(x)`                   |
//!
//! `WHERE` and `HAVING` clauses are false-interpreted (a row qualifies only
//! if the predicate is *true*), which is why [`Tri::false_interpreted`] is
//! the operator applied by the executor's filters.

/// A three-valued truth value: the result of evaluating a SQL predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tri {
    /// The predicate definitely holds.
    True,
    /// The predicate definitely does not hold.
    False,
    /// The predicate's outcome is unknown (some operand was `NULL`).
    Unknown,
}

impl Tri {
    /// Lift a two-valued boolean into three-valued logic.
    #[inline]
    pub fn from_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }

    /// Three-valued conjunction (Kleene `AND`).
    ///
    /// `false` dominates: `false AND unknown = false`.
    #[inline]
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    /// Three-valued disjunction (Kleene `OR`).
    ///
    /// `true` dominates: `true OR unknown = true`.
    #[inline]
    pub fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }

    /// Three-valued negation; `NOT unknown = unknown`.
    ///
    /// Deliberately named `not` to match the logic-operator family
    /// (`and`/`or`/`not`); `Tri` does not implement `std::ops::Not` so
    /// there is no ambiguity in practice.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    /// The paper's false interpretation `⌊P⌋`: unknown is read as *false*.
    ///
    /// This is the SQL `WHERE`-clause rule — a tuple qualifies only when the
    /// search condition is definitely true.
    #[inline]
    pub fn false_interpreted(self) -> bool {
        self == Tri::True
    }

    /// The paper's true interpretation `⌈P⌉`: unknown is read as *true*.
    ///
    /// Used when reasoning about constraints that a `NULL` vacuously
    /// satisfies (e.g. `CHECK` constraints, which reject a row only when
    /// the condition is definitely false).
    #[inline]
    pub fn true_interpreted(self) -> bool {
        self != Tri::False
    }

    /// Returns `true` iff the value is [`Tri::Unknown`].
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == Tri::Unknown
    }
}

impl From<bool> for Tri {
    fn from(b: bool) -> Tri {
        Tri::from_bool(b)
    }
}

impl std::fmt::Display for Tri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tri::True => "true",
            Tri::False => "false",
            Tri::Unknown => "unknown",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Tri; 3] = [Tri::True, Tri::False, Tri::Unknown];

    #[test]
    fn and_truth_table() {
        assert_eq!(Tri::True.and(Tri::True), Tri::True);
        assert_eq!(Tri::True.and(Tri::False), Tri::False);
        assert_eq!(Tri::True.and(Tri::Unknown), Tri::Unknown);
        assert_eq!(Tri::False.and(Tri::Unknown), Tri::False);
        assert_eq!(Tri::Unknown.and(Tri::Unknown), Tri::Unknown);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Tri::False.or(Tri::False), Tri::False);
        assert_eq!(Tri::False.or(Tri::True), Tri::True);
        assert_eq!(Tri::Unknown.or(Tri::True), Tri::True);
        assert_eq!(Tri::Unknown.or(Tri::False), Tri::Unknown);
        assert_eq!(Tri::Unknown.or(Tri::Unknown), Tri::Unknown);
    }

    #[test]
    fn not_involutive_on_known() {
        for t in ALL {
            assert_eq!(t.not().not(), t);
        }
    }

    #[test]
    fn de_morgan_holds_in_kleene_logic() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn and_or_commutative_associative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn interpretation_operators() {
        assert!(Tri::True.false_interpreted());
        assert!(!Tri::Unknown.false_interpreted());
        assert!(!Tri::False.false_interpreted());
        assert!(Tri::True.true_interpreted());
        assert!(Tri::Unknown.true_interpreted());
        assert!(!Tri::False.true_interpreted());
    }

    #[test]
    fn interpretations_differ_exactly_on_unknown() {
        for t in ALL {
            assert_eq!(
                t.false_interpreted() != t.true_interpreted(),
                t.is_unknown()
            );
        }
    }
}
