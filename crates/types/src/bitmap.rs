//! A compact null bitmap for columnar storage.
//!
//! Columnar tables (see `uniq-engine`'s `columnar` module) store one
//! validity bit per row per column instead of a `Value::Null` variant
//! per cell. The bitmap is append-only: it is built once when a column
//! is encoded and never mutated afterwards, so it needs no interior
//! mutability and no capacity negotiation — `push` during the encode
//! pass, `is_null` during kernel execution.

/// One bit per row: `true` means the row's value in this column is
/// SQL `NULL`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// An empty bitmap.
    pub fn new() -> NullBitmap {
        NullBitmap::default()
    }

    /// An empty bitmap with room for `rows` bits.
    pub fn with_capacity(rows: usize) -> NullBitmap {
        NullBitmap {
            words: Vec::with_capacity(rows.div_ceil(64)),
            len: 0,
        }
    }

    /// Append one row's validity (`true` = NULL).
    pub fn push(&mut self, is_null: bool) {
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(0);
        }
        if is_null {
            *self.words.last_mut().expect("word pushed above") |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Whether row `row` is NULL. Out-of-range rows read as non-null so
    /// kernels can probe with unchecked selection indexes.
    pub fn is_null(&self, row: usize) -> bool {
        match self.words.get(row / 64) {
            Some(word) => row < self.len && (word >> (row % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL rows.
    pub fn count_nulls(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_bits_across_word_boundaries() {
        let mut b = NullBitmap::with_capacity(130);
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        for i in 0..130 {
            assert_eq!(b.is_null(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_nulls(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn out_of_range_reads_as_valid() {
        let mut b = NullBitmap::new();
        assert!(b.is_empty());
        assert!(!b.is_null(0));
        assert!(!b.is_null(1000));
        b.push(true);
        assert!(b.is_null(0));
        assert!(!b.is_null(1));
        assert!(!b.is_null(64));
    }

    #[test]
    fn all_null_and_all_valid_extremes() {
        let mut nulls = NullBitmap::new();
        let mut valid = NullBitmap::new();
        for _ in 0..100 {
            nulls.push(true);
            valid.push(false);
        }
        assert_eq!(nulls.count_nulls(), 100);
        assert_eq!(valid.count_nulls(), 0);
    }
}
