//! The Figure 2 supplier hierarchy, plus loaders from the relational
//! sample database and synthetic scaling for benchmarks.

use crate::hierarchy::{ImsDatabase, SegmentDef, SegmentNode};
use uniq_types::{Result, Value};

/// Child segment type name for parts.
pub const PARTS: &str = "PARTS";
/// Child segment type name for agents.
pub const AGENT: &str = "AGENT";

/// The Figure 2 hierarchy: SUPPLIER root with PARTS and AGENT children.
/// `SNO` is a *virtual* column of the children (derivable from the
/// parent), so child segments store only their own fields.
pub fn supplier_hierarchy() -> SegmentDef {
    SegmentDef {
        name: "SUPPLIER".into(),
        fields: vec![
            "SNO".into(),
            "SNAME".into(),
            "SCITY".into(),
            "BUDGET".into(),
            "STATUS".into(),
        ],
        key: 0,
        children: vec![
            SegmentDef {
                name: PARTS.into(),
                fields: vec![
                    "PNO".into(),
                    "PNAME".into(),
                    "OEM-PNO".into(),
                    "COLOR".into(),
                ],
                key: 0,
                children: vec![],
            },
            SegmentDef {
                name: AGENT.into(),
                fields: vec!["ANO".into(), "ANAME".into(), "ACITY".into()],
                key: 0,
                children: vec![],
            },
        ],
    }
}

/// Build the IMS database from the relational Figure 1 sample instance.
pub fn ims_supplier_db() -> Result<ImsDatabase> {
    let rel = uniq_catalog::sample::supplier_database()?;
    from_relational(&rel)
}

/// Load any populated supplier-schema [`uniq_catalog::Database`] into the
/// hierarchy (the gateway's view: PARTS/AGENTS rows become child segments
/// of their supplier).
pub fn from_relational(db: &uniq_catalog::Database) -> Result<ImsDatabase> {
    let mut ims = ImsDatabase::new(supplier_hierarchy());
    let suppliers = db.rows(&"SUPPLIER".into())?;
    let parts = db.rows(&"PARTS".into())?;
    let agents = db.rows(&"AGENTS".into())?;
    for s in suppliers {
        let mut node = SegmentNode::new(s.clone());
        let sno = &s[0];
        let twins: Vec<SegmentNode> = parts
            .iter()
            .filter(|p| &p[0] == sno)
            .map(|p| SegmentNode::new(vec![p[1].clone(), p[2].clone(), p[3].clone(), p[4].clone()]))
            .collect();
        node.children.insert(PARTS.into(), twins);
        let twins: Vec<SegmentNode> = agents
            .iter()
            .filter(|a| &a[0] == sno)
            .map(|a| SegmentNode::new(vec![a[1].clone(), a[2].clone(), a[3].clone()]))
            .collect();
        node.children.insert(AGENT.into(), twins);
        ims.insert_root(node)?;
    }
    Ok(ims)
}

/// The constant `OEM-PNO` carried by every supplier's shared part, for
/// non-key-qualification experiments (`OEM-PNO` is *not* the twin key, so
/// a `GNP` qualified on it cannot halt early on key order).
pub const SHARED_OEM_PNO: i64 = 77_777;

/// Synthetic database for the Example 10 experiments: `suppliers` roots,
/// each with `parts_per_supplier` parts; every supplier supplies part
/// number `shared_pno` at twin-chain position `shared_position`
/// (0-based), so the target of the probe sits a controlled distance into
/// each chain. The shared part carries [`SHARED_OEM_PNO`] in its
/// (non-key) `OEM-PNO` field; all other parts carry unique values.
pub fn synthetic(
    suppliers: usize,
    parts_per_supplier: usize,
    shared_pno: i64,
    shared_position: usize,
) -> Result<ImsDatabase> {
    assert!(shared_position < parts_per_supplier);
    let mut ims = ImsDatabase::new(supplier_hierarchy());
    for s in 0..suppliers {
        let sno = s as i64 + 1;
        let mut node = SegmentNode::new(vec![
            Value::Int(sno),
            Value::str(format!("Supplier{sno}")),
            Value::str("Toronto"),
            Value::Int(100),
            Value::str("Active"),
        ]);
        let mut twins = Vec::with_capacity(parts_per_supplier);
        for p in 0..parts_per_supplier {
            // Build PNOs so the shared part lands at `shared_position` in
            // key order: positions before it get smaller keys.
            let pno = if p == shared_position {
                shared_pno
            } else if p < shared_position {
                shared_pno - (shared_position - p) as i64
            } else {
                shared_pno + (p - shared_position) as i64
            };
            let oem = if p == shared_position {
                SHARED_OEM_PNO
            } else {
                sno * 100_000 + pno
            };
            twins.push(SegmentNode::new(vec![
                Value::Int(pno),
                Value::str(format!("part{pno}")),
                Value::Int(oem),
                Value::str(if pno % 3 == 0 { "RED" } else { "GREEN" }),
            ]));
        }
        node.children.insert(PARTS.into(), twins);
        node.children.insert(AGENT.into(), Vec::new());
        ims.insert_root(node)?;
    }
    Ok(ims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relational_sample_loads() {
        let db = ims_supplier_db().unwrap();
        assert_eq!(db.root_count(), 5);
        // Supplier 3 has two parts (10 and 13).
        let pos = db.index_lookup(&Value::Int(3)).unwrap();
        assert_eq!(db.root(pos).unwrap().children[PARTS].len(), 2);
    }

    #[test]
    fn synthetic_places_shared_part() {
        let db = synthetic(10, 8, 500, 3).unwrap();
        assert_eq!(db.root_count(), 10);
        for i in db.key_order() {
            let chain = &db.root(i).unwrap().children[PARTS];
            assert_eq!(chain.len(), 8);
            assert_eq!(chain[3].fields[0], Value::Int(500));
            // Chain must be strictly key-ordered.
            for w in chain.windows(2) {
                assert!(w[0].fields[0].as_int().unwrap() < w[1].fields[0].as_int().unwrap());
            }
        }
    }
}
