//! A HIDAM-style hierarchical database simulator with a DL/I call
//! interface (paper §6.1, Figure 2).
//!
//! The paper's gateway work motivates converting joins *to* nested
//! subqueries: on IMS, a query runs as an iterative program of DL/I calls
//! (`GU` get-unique, `GN` get-next, `GNP` get-next-within-parent), and the
//! dominant cost is the *number of DL/I calls* plus the segments each call
//! inspects. This crate reproduces that cost model:
//!
//! * a database is a forest of root segments with key-sequenced access
//!   (HIDAM's root index) and key-ordered twin chains of child segments
//!   (parent-child/twin pointers);
//! * [`dli::Dli`] exposes `GU`/`GN`/`GNP` with qualified SSAs and the
//!   status codes `'  '` (ok), `GE` (not found) and `GB` (end of
//!   database), counting calls and segments inspected per segment type;
//! * a `GNP` qualified on the twin chain's **key** field stops scanning as
//!   soon as the chain's keys pass the target (key-sequenced search); a
//!   qualification on a non-key field must scan the whole chain — exactly
//!   the distinction behind the paper's `OEM-PNO` remark;
//! * [`gateway`] runs the paper's two programs for Example 10 (the join
//!   strategy of lines 21–29 and the nested/EXISTS strategy of lines
//!   30–35) and reports their DL/I call counts.

pub mod dli;
pub mod gateway;
pub mod hierarchy;
pub mod sample;

pub use dli::{Dli, DliStats, Ssa, Status};
pub use hierarchy::{ImsDatabase, SegmentDef, SegmentNode};
