//! The hierarchical data model: segment types, segment occurrences,
//! key-sequenced roots and key-ordered twin chains.

use std::collections::BTreeMap;
use uniq_types::{ColumnName, Error, Result, Value};

/// A segment type definition: fields, key field, child segment types.
#[derive(Debug, Clone)]
pub struct SegmentDef {
    /// Segment type name (e.g. `SUPPLIER`).
    pub name: String,
    /// Field names, in order.
    pub fields: Vec<ColumnName>,
    /// Index of the key field within `fields`. Roots are key-sequenced on
    /// it (HIDAM index); twin chains are stored in its order.
    pub key: usize,
    /// Child segment types, in hierarchical order.
    pub children: Vec<SegmentDef>,
}

impl SegmentDef {
    /// Look up a field position by name.
    pub fn field_position(&self, name: &ColumnName) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f == name)
            .ok_or_else(|| Error::UnknownColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Find a direct child segment type by name.
    pub fn child(&self, name: &str) -> Option<&SegmentDef> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// One segment occurrence with its children, twin chains in key order.
#[derive(Debug, Clone)]
pub struct SegmentNode {
    /// Field values, parallel to the segment type's `fields`.
    pub fields: Vec<Value>,
    /// Child occurrences per child segment type name.
    pub children: BTreeMap<String, Vec<SegmentNode>>,
}

impl SegmentNode {
    /// A childless occurrence.
    pub fn new(fields: Vec<Value>) -> SegmentNode {
        SegmentNode {
            fields,
            children: BTreeMap::new(),
        }
    }
}

/// A HIDAM-style physical database: one root segment type, root
/// occurrences reachable through a key-sequenced index.
#[derive(Debug, Clone)]
pub struct ImsDatabase {
    /// The root segment type (its `children` define the full hierarchy).
    pub root_def: SegmentDef,
    /// Root occurrences, in arbitrary physical order.
    roots: Vec<SegmentNode>,
    /// HIDAM root index: key value → position in `roots`.
    root_index: BTreeMap<Value, usize>,
}

impl ImsDatabase {
    /// An empty database for the given hierarchy.
    pub fn new(root_def: SegmentDef) -> ImsDatabase {
        ImsDatabase {
            root_def,
            roots: Vec::new(),
            root_index: BTreeMap::new(),
        }
    }

    /// Insert a root occurrence (children included), keyed on the root
    /// key field. Child twin chains are sorted into key order on insert.
    pub fn insert_root(&mut self, mut node: SegmentNode) -> Result<()> {
        let key = node.fields[self.root_def.key].clone();
        if key.is_null() {
            return Err(Error::ConstraintViolation {
                table: self.root_def.name.clone(),
                message: "root key may not be NULL".into(),
            });
        }
        if self.root_index.contains_key(&key) {
            return Err(Error::ConstraintViolation {
                table: self.root_def.name.clone(),
                message: format!("duplicate root key {key}"),
            });
        }
        sort_twins(&self.root_def, &mut node);
        self.root_index.insert(key, self.roots.len());
        self.roots.push(node);
        Ok(())
    }

    /// Number of root occurrences.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// The root at physical position `i`.
    pub fn root(&self, i: usize) -> Option<&SegmentNode> {
        self.roots.get(i)
    }

    /// Key-sequenced iteration order: root positions sorted by key.
    pub fn key_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.root_index.values().copied()
    }

    /// HIDAM index lookup: position of the root with exactly this key.
    pub fn index_lookup(&self, key: &Value) -> Option<usize> {
        self.root_index.get(key).copied()
    }
}

fn sort_twins(def: &SegmentDef, node: &mut SegmentNode) {
    for child_def in &def.children {
        if let Some(chain) = node.children.get_mut(&child_def.name) {
            chain.sort_by(|a, b| {
                a.fields[child_def.key]
                    .null_cmp(&b.fields[child_def.key])
                    .expect("comparable twin keys")
            });
            for twin in chain.iter_mut() {
                sort_twins(child_def, twin);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_def() -> SegmentDef {
        SegmentDef {
            name: "ROOT".into(),
            fields: vec!["K".into(), "V".into()],
            key: 0,
            children: vec![SegmentDef {
                name: "CHILD".into(),
                fields: vec!["CK".into()],
                key: 0,
                children: vec![],
            }],
        }
    }

    fn root(k: i64, child_keys: &[i64]) -> SegmentNode {
        let mut n = SegmentNode::new(vec![Value::Int(k), Value::str("v")]);
        n.children.insert(
            "CHILD".into(),
            child_keys
                .iter()
                .map(|&c| SegmentNode::new(vec![Value::Int(c)]))
                .collect(),
        );
        n
    }

    #[test]
    fn roots_are_key_sequenced() {
        let mut db = ImsDatabase::new(tiny_def());
        db.insert_root(root(3, &[])).unwrap();
        db.insert_root(root(1, &[])).unwrap();
        db.insert_root(root(2, &[])).unwrap();
        let keys: Vec<i64> = db
            .key_order()
            .map(|i| db.root(i).unwrap().fields[0].as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn twin_chains_sort_by_key() {
        let mut db = ImsDatabase::new(tiny_def());
        db.insert_root(root(1, &[5, 2, 9])).unwrap();
        let chain = &db.root(0).unwrap().children["CHILD"];
        let keys: Vec<i64> = chain
            .iter()
            .map(|c| c.fields[0].as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![2, 5, 9]);
    }

    #[test]
    fn duplicate_root_key_rejected() {
        let mut db = ImsDatabase::new(tiny_def());
        db.insert_root(root(1, &[])).unwrap();
        assert!(db.insert_root(root(1, &[])).is_err());
    }

    #[test]
    fn index_lookup_finds_root() {
        let mut db = ImsDatabase::new(tiny_def());
        db.insert_root(root(7, &[])).unwrap();
        db.insert_root(root(4, &[])).unwrap();
        let pos = db.index_lookup(&Value::Int(4)).unwrap();
        assert_eq!(db.root(pos).unwrap().fields[0], Value::Int(4));
        assert!(db.index_lookup(&Value::Int(99)).is_none());
    }

    #[test]
    fn field_position_resolves() {
        let def = tiny_def();
        assert_eq!(def.field_position(&"V".into()).unwrap(), 1);
        assert!(def.field_position(&"NOPE".into()).is_err());
        assert!(def.child("CHILD").is_some());
        assert!(def.child("NOPE").is_none());
    }
}
