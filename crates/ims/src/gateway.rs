//! The gateway's two iterative DL/I programs for Example 10.
//!
//! Query: `SELECT ALL S.* FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO
//! AND P.PNO = :PARTNO` — list all suppliers of a particular part.
//!
//! * [`join_strategy`] is the paper's lines 21–29: after a successful
//!   `GNP`, the program issues **another** `GNP` looking for further
//!   matches (a join must account for all of them). When the
//!   qualification is on the twin key that second call always returns
//!   `GE`.
//! * [`exists_strategy`] is lines 30–35, legal once the optimizer has
//!   rewritten the join to a nested `EXISTS` query (Theorem 2): one `GNP`
//!   per supplier, stop at the first match — "reduces the number of DL/I
//!   calls against the PARTS segment by half".
//!
//! Both take the qualification field as a parameter so the same programs
//! run the §6.1 `OEM-PNO` variant (non-key qualification), where the join
//! strategy must scan entire twin chains and the saving exceeds 2×.

use crate::dli::{Dli, DliStats, Ssa};
use crate::hierarchy::ImsDatabase;
use uniq_types::{ColumnName, Result, Value};

/// One output row: the supplier segment's fields.
pub type SupplierRow = Vec<Value>;

/// The outcome of one gateway program run.
#[derive(Debug, Clone)]
pub struct GatewayRun {
    /// Output rows, in retrieval order.
    pub rows: Vec<SupplierRow>,
    /// DL/I call and inspection counters.
    pub stats: DliStats,
}

/// Paper lines 21–29: the join strategy (inner loop runs to `GE`).
pub fn join_strategy(
    db: &ImsDatabase,
    qual_field: impl Into<ColumnName>,
    value: impl Into<Value>,
) -> Result<GatewayRun> {
    let field = qual_field.into();
    let value = value.into();
    let mut dli = Dli::new(db);
    let mut rows = Vec::new();

    let mut status = dli.gu(&Ssa::any("SUPPLIER"))?; // line 21
    while status.ok() {
        // line 22
        let (mut pstatus, _) = dli.gnp(&Ssa::eq("PARTS", field.clone(), value.clone()))?; // 23
        while pstatus.ok() {
            // line 24
            let supplier = dli.current_root().expect("positioned").fields.clone();
            rows.push(supplier); // line 25
            let (next, _) = dli.gnp(&Ssa::eq("PARTS", field.clone(), value.clone()))?; // 26
            pstatus = next;
        }
        status = dli.gn_root()?; // line 28
    }
    Ok(GatewayRun {
        rows,
        stats: dli.stats,
    })
}

/// Paper lines 30–35: the nested (EXISTS) strategy — stop at first match.
pub fn exists_strategy(
    db: &ImsDatabase,
    qual_field: impl Into<ColumnName>,
    value: impl Into<Value>,
) -> Result<GatewayRun> {
    let field = qual_field.into();
    let value = value.into();
    let mut dli = Dli::new(db);
    let mut rows = Vec::new();

    let mut status = dli.gu(&Ssa::any("SUPPLIER"))?; // line 30
    while status.ok() {
        // line 31
        let (pstatus, _) = dli.gnp(&Ssa::eq("PARTS", field.clone(), value.clone()))?; // 32
        if pstatus.ok() {
            // line 33
            rows.push(dli.current_root().expect("positioned").fields.clone());
        }
        status = dli.gn_root()?; // line 34
    }
    Ok(GatewayRun {
        rows,
        stats: dli.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::synthetic;

    #[test]
    fn strategies_return_the_same_suppliers() {
        // Every supplier supplies part 500 exactly once.
        let db = synthetic(50, 8, 500, 3).unwrap();
        let join = join_strategy(&db, "PNO", 500i64).unwrap();
        let exists = exists_strategy(&db, "PNO", 500i64).unwrap();
        assert_eq!(join.rows.len(), 50);
        assert_eq!(join.rows, exists.rows);
    }

    #[test]
    fn paper_claim_parts_calls_halved_on_key_join() {
        // Paper: "This version reduces the number of DL/I calls against
        // the PARTS segment by half, since the second GNP call in the
        // join strategy will always fail with a 'GE' status code."
        let db = synthetic(100, 8, 500, 3).unwrap();
        let join = join_strategy(&db, "PNO", 500i64).unwrap();
        let exists = exists_strategy(&db, "PNO", 500i64).unwrap();
        assert_eq!(join.stats.calls_to("PARTS"), 200); // 2 per supplier
        assert_eq!(exists.stats.calls_to("PARTS"), 100); // 1 per supplier
                                                         // SUPPLIER traversal is identical.
        assert_eq!(
            join.stats.calls_to("SUPPLIER"),
            exists.stats.calls_to("SUPPLIER")
        );
    }

    #[test]
    fn non_key_join_saves_more_than_half_of_inspections() {
        // OEM-PNO is not the twin key: after a hit, the join strategy's
        // second GNP scans the remainder of the chain before reporting
        // GE; the nested strategy stops at the first match. With the
        // shared OEM value every supplier matches at chain position 0.
        let parts_per = 16u64;
        let suppliers = 100u64;
        let db = synthetic(suppliers as usize, parts_per as usize, 500, 0).unwrap();
        let join = join_strategy(&db, "OEM-PNO", crate::sample::SHARED_OEM_PNO).unwrap();
        let exists = exists_strategy(&db, "OEM-PNO", crate::sample::SHARED_OEM_PNO).unwrap();
        assert_eq!(join.rows.len(), suppliers as usize);
        assert_eq!(join.rows, exists.rows);
        // Join: every supplier scans its whole chain (1 hit + rest).
        assert_eq!(join.stats.inspected_of("PARTS"), suppliers * parts_per);
        // Nested: one inspection per supplier — a 16× reduction.
        assert_eq!(exists.stats.inspected_of("PARTS"), suppliers);
        // And the calls are halved, as in the key-qualified case.
        assert_eq!(join.stats.calls_to("PARTS"), 2 * suppliers);
        assert_eq!(exists.stats.calls_to("PARTS"), suppliers);
    }

    #[test]
    fn duplicate_matches_produce_duplicate_join_rows() {
        // Two parts with the same non-key OEM-PNO under one supplier
        // would yield two join rows; with unique OEM-PNOs a single
        // matching chain position yields one. Use the PNO key with a
        // supplier that matches: multiplicity 1 per supplier by
        // construction, so join rows == exists rows — covered above. Here
        // verify the join inner loop DOES iterate: total PARTS calls =
        // matches + GE per supplier.
        let db = synthetic(10, 4, 500, 1).unwrap();
        let join = join_strategy(&db, "PNO", 500i64).unwrap();
        assert_eq!(join.stats.calls_to("PARTS"), 20);
        assert_eq!(join.rows.len(), 10);
    }
}
