//! The DL/I call interface: `GU`, `GN` (root level) and `GNP`, with
//! qualified SSAs, status codes, and per-segment call accounting.
//!
//! The simulator models the costs the paper argues about:
//!
//! * every `GU`/`GN`/`GNP` is **one DL/I call** against its segment type;
//! * a call additionally *inspects* segments while searching — root
//!   segments via the key-sequenced HIDAM index (`GU` qualified on the
//!   root key inspects exactly one), twins by walking the chain from the
//!   current position;
//! * a `GNP` qualified on the twin chain's **key field** halts with `GE`
//!   as soon as the chain's keys exceed the target (the chain is stored
//!   in key order); a qualification on a **non-key field** (the paper's
//!   `OEM-PNO` case) must walk the entire remaining chain before
//!   reporting `GE`.

use crate::hierarchy::{ImsDatabase, SegmentNode};
use std::collections::BTreeMap;
use uniq_types::{ColumnName, Error, Result, Value};

/// DL/I status codes (the subset the paper's programs test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// `'  '` — call satisfied.
    Ok,
    /// `GE` — segment not found.
    NotFound,
    /// `GB` — end of database reached.
    EndOfDatabase,
}

impl Status {
    /// The paper's `while status = ' '` test.
    pub fn ok(self) -> bool {
        self == Status::Ok
    }
}

/// A segment search argument: segment type plus an optional
/// `field = value` qualification.
#[derive(Debug, Clone)]
pub struct Ssa {
    /// Target segment type name.
    pub segment: String,
    /// Optional equality qualification.
    pub qual: Option<(ColumnName, Value)>,
}

impl Ssa {
    /// Unqualified SSA.
    pub fn any(segment: impl Into<String>) -> Ssa {
        Ssa {
            segment: segment.into(),
            qual: None,
        }
    }

    /// `segment (field = value)`.
    pub fn eq(
        segment: impl Into<String>,
        field: impl Into<ColumnName>,
        value: impl Into<Value>,
    ) -> Ssa {
        Ssa {
            segment: segment.into(),
            qual: Some((field.into(), value.into())),
        }
    }
}

/// Per-segment-type call and inspection counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DliStats {
    /// DL/I calls issued, per segment type.
    pub calls: BTreeMap<String, u64>,
    /// Segment occurrences inspected while searching, per segment type.
    pub inspected: BTreeMap<String, u64>,
}

impl DliStats {
    /// Calls issued against one segment type.
    pub fn calls_to(&self, segment: &str) -> u64 {
        self.calls.get(segment).copied().unwrap_or(0)
    }

    /// Segments of one type inspected.
    pub fn inspected_of(&self, segment: &str) -> u64 {
        self.inspected.get(segment).copied().unwrap_or(0)
    }

    /// Total DL/I calls.
    pub fn total_calls(&self) -> u64 {
        self.calls.values().sum()
    }

    fn call(&mut self, segment: &str) {
        *self.calls.entry(segment.to_string()).or_insert(0) += 1;
    }

    fn inspect(&mut self, segment: &str, n: u64) {
        *self.inspected.entry(segment.to_string()).or_insert(0) += n;
    }
}

/// A DL/I session: database handle plus current position and counters.
pub struct Dli<'a> {
    db: &'a ImsDatabase,
    /// Position in key order: index into the key-ordered root sequence.
    root_cursor: Option<usize>,
    /// Key-ordered root positions (materialized once).
    key_order: Vec<usize>,
    /// Per-child-type cursor within the current root's twin chain.
    child_cursor: BTreeMap<String, usize>,
    /// Work counters.
    pub stats: DliStats,
}

impl<'a> Dli<'a> {
    /// Open a session positioned before the first root.
    pub fn new(db: &'a ImsDatabase) -> Dli<'a> {
        Dli {
            db,
            root_cursor: None,
            key_order: db.key_order().collect(),
            child_cursor: BTreeMap::new(),
            stats: DliStats::default(),
        }
    }

    /// The current root segment, if positioned.
    pub fn current_root(&self) -> Option<&'a SegmentNode> {
        let cursor = self.root_cursor?;
        let pos = *self.key_order.get(cursor)?;
        self.db.root(pos)
    }

    fn root_name(&self) -> &str {
        &self.db.root_def.name
    }

    /// `GU` — get unique: position to the first root satisfying the SSA.
    ///
    /// Qualified on the root key, this is a HIDAM index lookup (one
    /// segment inspected); qualified on another field it scans roots in
    /// key order; unqualified it positions to the first root.
    pub fn gu(&mut self, ssa: &Ssa) -> Result<Status> {
        if ssa.segment != self.root_name() {
            return Err(Error::internal(format!(
                "GU targets the root segment {} (got {})",
                self.root_name(),
                ssa.segment
            )));
        }
        self.stats.call(&ssa.segment);
        self.child_cursor.clear();
        match &ssa.qual {
            None => {
                if self.key_order.is_empty() {
                    self.root_cursor = None;
                    return Ok(Status::EndOfDatabase);
                }
                self.stats.inspect(&ssa.segment, 1);
                self.root_cursor = Some(0);
                Ok(Status::Ok)
            }
            Some((field, value)) => {
                let fpos = self.db.root_def.field_position(field)?;
                if fpos == self.db.root_def.key {
                    // Key-sequenced (indexed) access.
                    self.stats.inspect(&ssa.segment, 1);
                    match self.db.index_lookup(value) {
                        Some(pos) => {
                            let cursor = self
                                .key_order
                                .iter()
                                .position(|&p| p == pos)
                                .expect("indexed root is in key order");
                            self.root_cursor = Some(cursor);
                            Ok(Status::Ok)
                        }
                        None => {
                            self.root_cursor = None;
                            Ok(Status::NotFound)
                        }
                    }
                } else {
                    // Sequential scan in key order.
                    for (cursor, &pos) in self.key_order.iter().enumerate() {
                        self.stats.inspect(&ssa.segment, 1);
                        let root = self.db.root(pos).expect("valid position");
                        if root.fields[fpos].null_eq(value).unwrap_or(false) {
                            self.root_cursor = Some(cursor);
                            return Ok(Status::Ok);
                        }
                    }
                    self.root_cursor = None;
                    Ok(Status::NotFound)
                }
            }
        }
    }

    /// `GN` at the root level — advance to the next root in key sequence.
    pub fn gn_root(&mut self) -> Result<Status> {
        let root_name = self.root_name().to_string();
        self.stats.call(&root_name);
        self.child_cursor.clear();
        let next = match self.root_cursor {
            None => 0,
            Some(c) => c + 1,
        };
        if next >= self.key_order.len() {
            self.root_cursor = None;
            return Ok(Status::EndOfDatabase);
        }
        self.stats.inspect(&root_name, 1);
        self.root_cursor = Some(next);
        Ok(Status::Ok)
    }

    /// `GNP` — get next within parent: advance through the current root's
    /// twin chain of `ssa.segment`, from the current child position,
    /// returning the next occurrence satisfying the qualification.
    ///
    /// Returns the matched segment's fields (cloned) with `Status::Ok`,
    /// or `GE` when the chain is exhausted — early when the chain's key
    /// field exceeds a key-field qualification.
    pub fn gnp(&mut self, ssa: &Ssa) -> Result<(Status, Option<Vec<Value>>)> {
        self.stats.call(&ssa.segment);
        let db = self.db;
        let root = self
            .current_root()
            .ok_or_else(|| Error::internal("GNP without parent position"))?;
        let child_def = db
            .root_def
            .child(&ssa.segment)
            .ok_or_else(|| Error::internal(format!("unknown child segment {}", ssa.segment)))?;
        let chain: &[SegmentNode] = root
            .children
            .get(&ssa.segment)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        let start = *self.child_cursor.get(&ssa.segment).unwrap_or(&0);
        let qual = match &ssa.qual {
            None => None,
            Some((field, value)) => Some((child_def.field_position(field)?, value.clone())),
        };
        let is_key_qual = qual
            .as_ref()
            .is_some_and(|(fpos, _)| *fpos == child_def.key);

        let mut inspected = 0u64;
        for (i, twin) in chain.iter().enumerate().skip(start) {
            inspected += 1;
            match &qual {
                None => {
                    self.child_cursor.insert(ssa.segment.clone(), i + 1);
                    self.stats.inspect(&ssa.segment, inspected);
                    return Ok((Status::Ok, Some(twin.fields.clone())));
                }
                Some((fpos, value)) => {
                    let field = &twin.fields[*fpos];
                    if field.null_eq(value).unwrap_or(false) {
                        self.child_cursor.insert(ssa.segment.clone(), i + 1);
                        self.stats.inspect(&ssa.segment, inspected);
                        return Ok((Status::Ok, Some(twin.fields.clone())));
                    }
                    // Key-sequenced twin chain: once past the target key,
                    // no later twin can match.
                    if is_key_qual {
                        if let Ok(std::cmp::Ordering::Greater) = field.null_cmp(value) {
                            self.child_cursor.insert(ssa.segment.clone(), i + 1);
                            self.stats.inspect(&ssa.segment, inspected);
                            return Ok((Status::NotFound, None));
                        }
                    }
                }
            }
        }
        self.child_cursor.insert(ssa.segment.clone(), chain.len());
        self.stats.inspect(&ssa.segment, inspected);
        Ok((Status::NotFound, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{ims_supplier_db, PARTS};

    #[test]
    fn gu_unqualified_positions_first_root() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        assert!(dli.gu(&Ssa::any("SUPPLIER")).unwrap().ok());
        let root = dli.current_root().unwrap();
        assert_eq!(root.fields[0], Value::Int(1));
    }

    #[test]
    fn gu_on_key_is_indexed() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        assert!(dli.gu(&Ssa::eq("SUPPLIER", "SNO", 3i64)).unwrap().ok());
        assert_eq!(dli.stats.inspected_of("SUPPLIER"), 1);
        assert_eq!(dli.current_root().unwrap().fields[1], Value::str("Acme"));
    }

    #[test]
    fn gu_missing_key_is_ge() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        assert_eq!(
            dli.gu(&Ssa::eq("SUPPLIER", "SNO", 99i64)).unwrap(),
            Status::NotFound
        );
    }

    #[test]
    fn gn_walks_key_sequence_to_gb() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        dli.gu(&Ssa::any("SUPPLIER")).unwrap();
        let mut keys = vec![dli.current_root().unwrap().fields[0].clone()];
        while dli.gn_root().unwrap().ok() {
            keys.push(dli.current_root().unwrap().fields[0].clone());
        }
        assert_eq!(keys, (1..=5).map(Value::Int).collect::<Vec<_>>());
        assert_eq!(dli.stats.calls_to("SUPPLIER"), 6); // GU + 5 GN (last = GB)
    }

    #[test]
    fn gnp_iterates_twin_chain() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        dli.gu(&Ssa::eq("SUPPLIER", "SNO", 1i64)).unwrap();
        let (s1, p1) = dli.gnp(&Ssa::any(PARTS)).unwrap();
        assert!(s1.ok());
        assert_eq!(p1.unwrap()[0], Value::Int(10));
        let (s2, p2) = dli.gnp(&Ssa::any(PARTS)).unwrap();
        assert!(s2.ok());
        assert_eq!(p2.unwrap()[0], Value::Int(11));
        let (s3, _) = dli.gnp(&Ssa::any(PARTS)).unwrap();
        assert_eq!(s3, Status::NotFound);
    }

    #[test]
    fn key_qualified_gnp_halts_early() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        dli.gu(&Ssa::eq("SUPPLIER", "SNO", 1i64)).unwrap();
        // Supplier 1 has parts 10, 11; searching PNO = 10 inspects 1.
        let (s, _) = dli.gnp(&Ssa::eq(PARTS, "PNO", 10i64)).unwrap();
        assert!(s.ok());
        assert_eq!(dli.stats.inspected_of(PARTS), 1);
        // Second call: chain continues at 11 > 10 → GE after 1 inspection.
        let (s, _) = dli.gnp(&Ssa::eq(PARTS, "PNO", 10i64)).unwrap();
        assert_eq!(s, Status::NotFound);
        assert_eq!(dli.stats.inspected_of(PARTS), 2);
    }

    #[test]
    fn non_key_qualified_gnp_scans_whole_chain() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        dli.gu(&Ssa::eq("SUPPLIER", "SNO", 1i64)).unwrap();
        // OEM-PNO is not the twin key: a miss must inspect all twins.
        let (s, _) = dli.gnp(&Ssa::eq(PARTS, "OEM-PNO", 9999i64)).unwrap();
        assert_eq!(s, Status::NotFound);
        assert_eq!(dli.stats.inspected_of(PARTS), 2); // both parts of supplier 1
    }

    #[test]
    fn gnp_resets_per_root() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        dli.gu(&Ssa::any("SUPPLIER")).unwrap();
        dli.gnp(&Ssa::any(PARTS)).unwrap();
        dli.gn_root().unwrap();
        // Cursor reset: first part of supplier 2.
        let (s, p) = dli.gnp(&Ssa::any(PARTS)).unwrap();
        assert!(s.ok());
        assert_eq!(p.unwrap()[0], Value::Int(10));
    }

    #[test]
    fn gnp_without_position_errors() {
        let db = ims_supplier_db().unwrap();
        let mut dli = Dli::new(&db);
        assert!(dli.gnp(&Ssa::any(PARTS)).is_err());
    }
}
