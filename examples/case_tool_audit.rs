//! Audit a CASE-tool-style query corpus for redundant DISTINCTs (§5.1).
//!
//! The paper argues many real queries carry unnecessary `DISTINCT`
//! clauses because query generators and defensive practitioners add them
//! indiscriminately. This example generates such a corpus, runs both
//! sufficient tests on every query, and cross-checks the verdicts
//! against actual execution on randomized instances.
//!
//! Run with: `cargo run --example case_tool_audit`

use uniqueness::workload::{generate_corpus, CorpusStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    println!("generating {n} SELECT DISTINCT queries over the supplier schema…");
    let corpus = generate_corpus(2024, n, 6)?;
    let stats = CorpusStats::of(&corpus);

    println!("\n-- corpus audit --");
    println!("queries generated           : {}", stats.total);
    println!(
        "provably duplicate-free     : {} ({:.1}%) via FD closure",
        stats.fd_yes,
        100.0 * stats.fd_yes as f64 / stats.total as f64
    );
    println!(
        "  …of which Algorithm 1 got : {} ({:.1}%)",
        stats.alg1_yes,
        100.0 * stats.alg1_yes as f64 / stats.total as f64
    );
    println!(
        "observed actual duplicates  : {} ({:.1}%)",
        stats.with_duplicates,
        100.0 * stats.with_duplicates as f64 / stats.total as f64
    );
    println!("soundness violations        : {}", stats.unsound);
    assert_eq!(stats.unsound, 0, "a proven-unique query duplicated!");

    println!("\nsample of provably-redundant DISTINCTs:");
    for q in corpus.iter().filter(|q| q.fd_unique).take(5) {
        println!("  {}", q.sql);
    }
    println!("\nsample of load-bearing DISTINCTs (duplicates observed):");
    for q in corpus.iter().filter(|q| q.duplicates_observed).take(5) {
        println!("  {}", q.sql);
    }

    // Queries neither proven unique nor observed duplicating: the
    // sufficient tests' grey zone (could be either).
    let grey = corpus
        .iter()
        .filter(|q| !q.fd_unique && !q.duplicates_observed)
        .count();
    println!("\ngrey zone (unproven, no duplicates observed): {grey}");
    Ok(())
}
