//! Quickstart: detect a redundant DISTINCT and skip the result sort.
//!
//! Run with: `cargo run --example quickstart`

use uniqueness::engine::Session;
use uniqueness::plan::HostVars;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1 supplier database, populated with the sample
    // instance used throughout the examples.
    let session = Session::sample()?;

    // Paper Example 1: every result row carries SNO and PNO — the key of
    // PARTS — so the DISTINCT cannot eliminate anything.
    let sql = "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
               WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
    println!("query:\n  {sql}\n");

    let out = session.query(sql)?;
    println!("optimizer steps:");
    for step in &out.trace.steps {
        println!("  [{} / {}] {}", step.rule, step.theorem, step.why);
        println!("  rewritten: {}", step.sql_after);
    }

    println!("\nresult ({} rows):", out.rows.len());
    let header: Vec<String> = out.columns.iter().map(|c| c.to_string()).collect();
    println!("  {}", header.join(" | "));
    for row in &out.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }

    // The point of the rewrite: no sort was needed.
    println!("\nsorts performed: {}", out.stats.sorts);
    assert_eq!(out.stats.sorts, 0);

    // Compare with the baseline (no rewriting): same rows, plus a sort.
    let base = session.query_unoptimized(sql, &HostVars::new())?;
    println!(
        "baseline (no rewriting): {} rows, {} sort(s), {} comparisons",
        base.rows.len(),
        base.stats.sorts,
        base.stats.sort_comparisons
    );

    // Example 2 (paper): project SNAME instead of SNO and the DISTINCT
    // becomes load-bearing — two suppliers named Acme supply part 10.
    let sql2 = "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
    let out2 = session.query(sql2)?;
    println!(
        "\nExample 2 keeps its DISTINCT: steps = {}, sorts = {}",
        out2.trace.steps.len(),
        out2.stats.sorts
    );
    assert!(out2.trace.steps.is_empty());
    Ok(())
}
