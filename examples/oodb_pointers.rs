//! Example 11 on the pointer-based object store: child→parent pointer
//! chasing vs. the rewritten nested-query plan, across parent-predicate
//! selectivities (§6.2).
//!
//! Run with: `cargo run --example oodb_pointers`

use uniqueness::oodb::sample::synthetic;
use uniqueness::oodb::strategies::{nested_strategy, pointer_strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suppliers = 10_000usize;
    let (store, classes) = synthetic(suppliers, 4, 500)?;

    println!("Example 11: SELECT ALL S.* FROM SUPPLIER S, PARTS P");
    println!("            WHERE S.SNO BETWEEN :LO AND :HI");
    println!("              AND S.SNO = P.SNO AND P.PNO = :PARTNO");
    println!("\nobject base: {suppliers} suppliers × 4 parts; every supplier supplies part 500\n");
    println!(
        "{:>12} {:>10} {:>16} {:>16} {:>10}",
        "selectivity", "matches", "pointer fetches", "nested fetches", "winner"
    );

    for pct in [0.1f64, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0] {
        let hi = ((suppliers as f64) * pct / 100.0).round().max(1.0) as i64;
        let ptr = pointer_strategy(&store, &classes, 500, 1, hi)?;
        let nst = nested_strategy(&store, &classes, 500, 1, hi)?;
        assert_eq!(ptr.rows.len(), nst.rows.len());
        let winner = if nst.stats.objects_fetched < ptr.stats.objects_fetched {
            "nested"
        } else {
            "pointer"
        };
        println!(
            "{:>11}% {:>10} {:>16} {:>16} {:>10}",
            pct,
            ptr.rows.len(),
            ptr.stats.objects_fetched,
            nst.stats.objects_fetched,
            winner
        );
    }

    println!(
        "\nWith a selective parent predicate the rewritten nested plan avoids \
         dereferencing thousands of useless child→parent pointers; as the \
         predicate loosens, the pointer plan wins back — exactly the \
         cost-model tradeoff §6.2 describes."
    );
    Ok(())
}
