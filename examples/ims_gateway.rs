//! Example 10 on the IMS/DL-I simulator: the join strategy vs. the
//! rewritten nested (EXISTS) strategy, in DL/I calls (§6.1).
//!
//! Run with: `cargo run --example ims_gateway`

use uniqueness::ims::gateway::{exists_strategy, join_strategy};
use uniqueness::ims::sample::synthetic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Example 10: SELECT ALL S.* FROM SUPPLIER S, PARTS P");
    println!("            WHERE S.SNO = P.SNO AND P.PNO = :PARTNO\n");

    println!("-- key-qualified probe (PNO is the PARTS twin key) --");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "suppliers", "join PARTS", "nested PARTS", "ratio"
    );
    for suppliers in [100usize, 1_000, 10_000] {
        let db = synthetic(suppliers, 8, 500, 3)?;
        let join = join_strategy(&db, "PNO", 500i64)?;
        let nested = exists_strategy(&db, "PNO", 500i64)?;
        assert_eq!(join.rows, nested.rows);
        let j = join.stats.calls_to("PARTS");
        let n = nested.stats.calls_to("PARTS");
        println!(
            "{:>10} {:>14} {:>14} {:>7.2}x",
            suppliers,
            j,
            n,
            j as f64 / n as f64
        );
    }
    println!("(the paper's claim: the nested form halves DL/I calls against PARTS)");

    println!("\n-- non-key probe (OEM-PNO): join form scans whole twin chains --");
    println!(
        "{:>12} {:>16} {:>16} {:>8}",
        "parts/suppl", "join inspected", "nested inspected", "ratio"
    );
    for parts_per in [4usize, 16, 64] {
        let db = synthetic(1_000, parts_per, 500, 0)?;
        // Every supplier's shared part carries the same (non-key)
        // OEM-PNO; the match sits first in each twin chain, so the
        // nested form stops after one inspection while the join form
        // must scan the rest of the chain to conclude GE.
        let probe = uniqueness::ims::sample::SHARED_OEM_PNO;
        let join = join_strategy(&db, "OEM-PNO", probe)?;
        let nested = exists_strategy(&db, "OEM-PNO", probe)?;
        assert_eq!(join.rows, nested.rows);
        let ji = join.stats.inspected_of("PARTS");
        let ni = nested.stats.inspected_of("PARTS");
        println!(
            "{:>12} {:>16} {:>16} {:>7.2}x",
            parts_per,
            ji,
            ni,
            ji as f64 / ni as f64
        );
    }
    println!("(with a match early in the chain, the nested form stops immediately)");
    Ok(())
}
