//! An interactive SQL shell over the supplier database.
//!
//! Run with: `cargo run --example sql_shell` and type SQL; every query is
//! parsed, analyzed, rewritten (showing which theorem fired) and
//! executed. Meta-commands:
//!
//! ```text
//! \d                         list tables
//! \set NAME value            bind a host variable (:NAME)
//! \explain SQL               show the rewrite trace and physical plan
//! \profile rel|nav|off       choose the optimizer profile
//! \analyze                   collect statistics, enable cost-based planning
//! \columnar                  build the column store, license vectorized kernels
//! \q                         quit
//! ```

use std::io::{BufRead, Write};
use uniqueness::core::pipeline::OptimizerOptions;
use uniqueness::engine::Session;
use uniqueness::plan::HostVars;
use uniqueness::types::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::sample()?;
    let mut hostvars = HostVars::new();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();

    println!("uniqueness SQL shell — Figure 1 supplier database loaded.");
    println!(
        "Type SQL, or \\d, \\set NAME value, \\profile rel|nav|off, \\analyze, \\columnar, \\q."
    );
    loop {
        print!("sql> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            let mut words = rest.split_whitespace();
            match words.next() {
                Some("q") | Some("quit") => break,
                Some("d") => {
                    for t in session.db.catalog().tables() {
                        let cols: Vec<String> = t
                            .columns
                            .iter()
                            .map(|c| format!("{} {}", c.name, c.data_type))
                            .collect();
                        println!("  {} ({})", t.name, cols.join(", "));
                    }
                }
                Some("set") => match (words.next(), words.next()) {
                    (Some(name), Some(value)) => {
                        let v: Value = match value.parse::<i64>() {
                            Ok(i) => Value::Int(i),
                            Err(_) => Value::str(value.trim_matches('\'')),
                        };
                        hostvars.set(name, v.clone());
                        println!("  :{} = {v}", name.to_uppercase());
                    }
                    _ => println!("usage: \\set NAME value"),
                },
                Some("explain") => {
                    let sql = rest.trim_start_matches("explain").trim();
                    match session.explain(sql) {
                        Ok(text) => print!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Some("analyze") => {
                    session.planner.cost_based = true;
                    session.analyze();
                    let stats = session.statistics().expect("just collected");
                    println!(
                        "  statistics collected for {} table(s); cost-based planning on",
                        stats.len()
                    );
                }
                Some("columnar") => {
                    session.planner.cost_based = true;
                    session.planner.columnar = true;
                    session.analyze();
                    println!(
                        "  column store built; vectorized execution licensed \
                         (row path still serves uncovered shapes)"
                    );
                }
                Some("profile") => match words.next() {
                    Some("rel") => {
                        session.optimizer = OptimizerOptions::relational();
                        println!("  profile: relational");
                    }
                    Some("nav") => {
                        session.optimizer = OptimizerOptions::navigational();
                        println!("  profile: navigational");
                    }
                    Some("off") => {
                        session.optimizer = OptimizerOptions::disabled();
                        println!("  profile: disabled");
                    }
                    _ => println!("usage: \\profile rel|nav|off"),
                },
                other => println!("unknown command \\{}", other.unwrap_or("")),
            }
            continue;
        }

        // DDL/DML go straight to the database; queries through the
        // optimizer + executor.
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("CREATE") || upper.starts_with("INSERT") {
            match session.run_script(line) {
                Ok(()) => println!("ok"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match session.query_with(line, &hostvars) {
            Ok(result) => {
                for step in &result.trace.steps {
                    println!("-- [{} / {}] {}", step.rule, step.theorem, step.why);
                    println!("-- {}", step.sql_after);
                }
                let header: Vec<String> = result.columns.iter().map(|c| c.to_string()).collect();
                println!("{}", header.join(" | "));
                for row in &result.rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                let vec_note = if result.stats.vector_ops > 0 {
                    format!(", {} vector op(s)", result.stats.vector_ops)
                } else {
                    String::new()
                };
                println!(
                    "({} rows; {} scanned, {} sort(s), {} subquery eval(s){vec_note})",
                    result.rows.len(),
                    result.stats.rows_scanned,
                    result.stats.sorts,
                    result.stats.subquery_evals
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
