//! Walk through every worked example of the paper, showing each
//! analysis verdict and rewrite on the Figure 1 sample database.
//!
//! Run with: `cargo run --example paper_walkthrough`

use uniqueness::core::algorithm1::{algorithm1, Algorithm1Options};
use uniqueness::core::analysis::unique_projection;
use uniqueness::core::pipeline::{Optimizer, OptimizerOptions};
use uniqueness::engine::Session;
use uniqueness::plan::{bind_query, HostVars};
use uniqueness::sql::parse_query;

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn show(session: &Session, title: &str, sql: &str, hv: &HostVars, opts: OptimizerOptions) {
    banner(title);
    println!("original : {sql}");
    let ast = parse_query(sql).expect("parse");
    let bound = bind_query(session.db.catalog(), &ast).expect("bind");
    if let Some(spec) = bound.as_spec() {
        let a1 = algorithm1(spec, &Algorithm1Options::default());
        let fd = unique_projection(spec);
        println!(
            "analysis : Algorithm 1 → {} | FD test → {} ({})",
            if a1.unique { "YES" } else { "NO" },
            if fd.unique { "YES" } else { "NO" },
            fd.reason
        );
    }
    let outcome = Optimizer::new(opts).optimize(&bound);
    if outcome.trace.steps.is_empty() {
        println!("rewrite  : (none applicable)");
    }
    for step in &outcome.trace.steps {
        println!("rewrite  : [{} / {}] {}", step.rule, step.theorem, step.why);
        println!("           {}", step.sql_after);
    }
    // Execute both forms and confirm equivalence.
    let base = {
        let mut ex = uniqueness::engine::Executor::new(
            &session.db,
            hv,
            uniqueness::engine::ExecOptions::default(),
        );
        ex.run(&bound).expect("execute original")
    };
    let opt = {
        let mut ex = uniqueness::engine::Executor::new(
            &session.db,
            hv,
            uniqueness::engine::ExecOptions::default(),
        );
        ex.run(&outcome.query).expect("execute rewritten")
    };
    let canon = |mut rows: Vec<Vec<uniqueness::types::Value>>| {
        rows.sort();
        rows
    };
    assert_eq!(
        canon(base.clone()),
        canon(opt),
        "rewrite changed semantics!"
    );
    println!("execution: {} row(s), rewritten form agrees ✓", base.len());
}

fn main() {
    let session = Session::sample().expect("sample database");
    let rel = OptimizerOptions::relational();
    let nav = OptimizerOptions::navigational();

    show(
        &session,
        "Example 1 — redundant DISTINCT (Theorem 1)",
        "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
         WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        &HostVars::new(),
        rel,
    );

    show(
        &session,
        "Example 2 — DISTINCT is required (same-name suppliers)",
        "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
         WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        &HostVars::new(),
        rel,
    );

    let hv3 = HostVars::new().with("SUPPLIER-NO", 3i64);
    show(
        &session,
        "Examples 3-5 — host variable pins PARTS' key; Algorithm 1 traces YES",
        "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
         WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
        &hv3,
        rel,
    );

    let hv6 = HostVars::new().with("SUPPLIER-NAME", "Acme");
    show(
        &session,
        "Example 6 — DISTINCT redundant despite non-key restriction",
        "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, PARTS P \
         WHERE S.SNAME = :SUPPLIER-NAME AND S.SNO = P.SNO",
        &hv6,
        rel,
    );

    let hv7 = HostVars::new()
        .with("SUPPLIER-NAME", "Acme")
        .with("PART-NO", 10i64);
    show(
        &session,
        "Example 7 — subquery → join (Theorem 2)",
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
         WHERE S.SNAME = :SUPPLIER-NAME AND EXISTS \
         (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)",
        &hv7,
        rel,
    );

    show(
        &session,
        "Example 8 — subquery → DISTINCT join (Corollary 1)",
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        &HostVars::new(),
        rel,
    );

    show(
        &session,
        "Example 9 — INTERSECT → EXISTS (Theorem 3)",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
         INTERSECT \
         SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
        &HostVars::new(),
        rel,
    );

    let hv10 = HostVars::new().with("PARTNO", 10i64);
    show(
        &session,
        "Example 10 — join → subquery for IMS (§6.1, navigational profile)",
        "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
         FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
        &hv10,
        nav,
    );

    let hv11 = HostVars::new().with("PARTNO", 10i64);
    show(
        &session,
        "Example 11 — join → subquery for pointer-based OODBs (§6.2)",
        "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
         FROM SUPPLIER S, PARTS P \
         WHERE S.SNO BETWEEN 1 AND 3 AND S.SNO = P.SNO AND P.PNO = :PARTNO",
        &hv11,
        nav,
    );

    println!("\nAll paper examples reproduced; every rewrite preserved semantics.");
}
