#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the full test suite.
# Everything runs without network access — the workspace has no registry
# dependencies (see crates/proptest and crates/criterion for the
# vendored dev-dependency shims).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> guard: build artifacts must not be tracked"
if [ -n "$(git ls-files target/)" ]; then
    echo "error: files under target/ are tracked in git" >&2
    exit 1
fi

echo "==> fast lane: optimizer pipeline tests"
cargo test -q -p uniq-core pipeline

echo "==> fast lane: cost model tests"
cargo test -q -p uniq-cost

echo "==> fast lane: columnar kernels and columnar/row agreement"
cargo test -q -p uniq-engine columnar
cargo test -q -p uniqueness --test columnar_agreement
cargo test -q -p uniq-bench e18

echo "==> fast lane: secondary indexes (sarg extraction, index paths, agreement)"
cargo test -q -p uniq-cost sarg
cargo test -q -p uniq-catalog index
cargo test -q -p uniq-engine index
cargo test -q -p uniqueness --test index_agreement
cargo test -q -p uniq-bench e19

echo "==> fast lane: U-semiring proof checker (soundness + adversarial corpus)"
cargo test -q -p uniq-proof
cargo test -q -p uniqueness --test proof_soundness

echo "==> fast lane: parallel/serial agreement at a 2-worker degree"
# --test-threads=1 keeps the 2-worker morsel pools from oversubscribing
# the CI host, so the lane's timing stays predictable.
cargo test -q -p uniqueness --test parallel_agreement -- --test-threads=1

echo "==> fast lane: aggregation / Top-K (elision kernels + agreement suite)"
cargo test -q -p uniq-engine agg
cargo test -q -p uniqueness --test agg_agreement
cargo test -q -p uniq-bench e23

echo "==> fast lane: wire codec + server end-to-end tests"
cargo test -q -p uniq-server

echo "==> fast lane: uniqd multi-client smoke test (loopback, ephemeral port)"
# Spawn the daemon on port 0, parse the actual port from its banner,
# then hammer it with a writer and two readers concurrently. The hard
# timeout guards CI against a wedged daemon; everything is loopback.
cargo build -q -p uniq-server --bins
SMOKE_LOG="$(mktemp)"
./target/debug/uniqd --port 0 > "$SMOKE_LOG" &
UNIQD_PID=$!
trap 'kill "$UNIQD_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    grep -q "uniqd listening on" "$SMOKE_LOG" && break
    sleep 0.1
done
UNIQD_ADDR="$(sed -n 's/^uniqd listening on //p' "$SMOKE_LOG")"
if [ -z "$UNIQD_ADDR" ]; then
    echo "error: uniqd never printed its listen address" >&2
    exit 1
fi
CLI=./target/debug/uniq-cli
timeout 60 "$CLI" --addr "$UNIQD_ADDR" \
    -e "INSERT INTO SUPPLIER VALUES (401, 'Smoke', 'Toronto', 7, 'Active');" &
WRITER=$!
for i in 1 2; do
    timeout 60 "$CLI" --addr "$UNIQD_ADDR" \
        -e "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SCITY = 'Toronto'" \
        > /dev/null &
    eval "READER$i=\$!"
done
wait "$WRITER" "$READER1" "$READER2"
# The write must be visible to a fresh snapshot, with a proof-carrying
# EXPLAIN served over the same wire.
timeout 60 "$CLI" --addr "$UNIQD_ADDR" \
    -e "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 401" | grep -q Smoke
timeout 60 "$CLI" --addr "$UNIQD_ADDR" --explain \
    "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO" \
    | grep -q "proof=✓"
# Aggregation round-trip over the wire: with the smoke INSERT above,
# Toronto has the most suppliers, so the top GROUP BY row names it.
timeout 60 "$CLI" --addr "$UNIQD_ADDR" \
    -e "SELECT S.SCITY, COUNT(*) AS N FROM SUPPLIER S GROUP BY S.SCITY ORDER BY N DESC LIMIT 1" \
    | grep -q "Toronto"
echo "==> fast lane: subscription deltas over the wire (one writer, two subscribers)"
# Two subscribers register the same set-tier view, a writer inserts one
# PARTS row, and both must receive the pushed ViewDelta before their
# --timeout-ms expires (uniq-cli exits 1 on a missed delta, so `wait`
# propagates delivery failure). Then the unsubscribe path must answer.
SUB_SQL="SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO"
for i in 1 2; do
    timeout 60 "$CLI" --addr "$UNIQD_ADDR" \
        --subscribe "$SUB_SQL" --deltas 1 --timeout-ms 30000 > /dev/null 2>&1 &
    eval "SUBSCRIBER$i=\$!"
done
sleep 1   # let both subscriptions register before the write publishes
timeout 60 "$CLI" --addr "$UNIQD_ADDR" \
    -e "INSERT INTO PARTS VALUES (401, 1, 'Delta', 491, 'RED');"
wait "$SUBSCRIBER1" "$SUBSCRIBER2"
kill "$UNIQD_PID" 2>/dev/null || true
trap - EXIT
rm -f "$SMOKE_LOG"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "CI green."
