#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the full test suite.
# Everything runs without network access — the workspace has no registry
# dependencies (see crates/proptest and crates/criterion for the
# vendored dev-dependency shims).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> guard: build artifacts must not be tracked"
if [ -n "$(git ls-files target/)" ]; then
    echo "error: files under target/ are tracked in git" >&2
    exit 1
fi

echo "==> fast lane: optimizer pipeline tests"
cargo test -q -p uniq-core pipeline

echo "==> fast lane: cost model tests"
cargo test -q -p uniq-cost

echo "==> fast lane: columnar kernels and columnar/row agreement"
cargo test -q -p uniq-engine columnar
cargo test -q -p uniqueness --test columnar_agreement
cargo test -q -p uniq-bench e18

echo "==> fast lane: secondary indexes (sarg extraction, index paths, agreement)"
cargo test -q -p uniq-cost sarg
cargo test -q -p uniq-catalog index
cargo test -q -p uniq-engine index
cargo test -q -p uniqueness --test index_agreement
cargo test -q -p uniq-bench e19

echo "==> fast lane: U-semiring proof checker (soundness + adversarial corpus)"
cargo test -q -p uniq-proof
cargo test -q -p uniqueness --test proof_soundness

echo "==> fast lane: parallel/serial agreement at a 2-worker degree"
# --test-threads=1 keeps the 2-worker morsel pools from oversubscribing
# the CI host, so the lane's timing stays predictable.
cargo test -q -p uniqueness --test parallel_agreement -- --test-threads=1

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "CI green."
