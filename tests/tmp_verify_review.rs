use uniqueness::plan::bind_query;
use uniqueness::proof::check_equiv;
use uniqueness::sql::parse_query;
use uniqueness::catalog::sample::supplier_schema;

#[test]
fn review_lowering_soundness_probe() {
    let db = supplier_schema().unwrap();
    let bind = |sql: &str| bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
    // lead declared DISTINCT on a non-key projection; lowered spec NOT distinct.
    let before = bind("SELECT DISTINCT S.SCITY FROM SUPPLIER S INTERSECT ALL SELECT A.ACITY FROM AGENTS A");
    let after = bind(
        "SELECT S.SCITY FROM SUPPLIER S WHERE EXISTS \
         (SELECT A.ACITY FROM AGENTS A WHERE (S.SCITY IS NULL AND A.ACITY IS NULL) OR S.SCITY = A.ACITY)",
    );
    let v = check_equiv(&before, &after);
    eprintln!("INTERSECT ALL probe verdict: {v:?}");
    // also the plain INTERSECT (distinct) vs non-distinct lowered spec
    let before2 = bind("SELECT DISTINCT S.SCITY FROM SUPPLIER S INTERSECT SELECT A.ACITY FROM AGENTS A");
    let v2 = check_equiv(&before2, &after);
    eprintln!("INTERSECT probe verdict: {v2:?}");
    panic!("show output");
}
