//! Incremental view maintenance agreement (E22's oracle, as a
//! property).
//!
//! For every subscribed query, after *every* write in a random
//! interleaving of INSERTs, the incrementally maintained view state
//! must equal a full recompute of the query over the head snapshot —
//! whatever maintenance tier the license granted. The subscribed
//! queries come from the standard labelled corpus (random DISTINCT
//! blocks over the Figure 1 schema), plus a fixed `NOT EXISTS` shape
//! that forces the honest recompute tier and can *delete* view rows
//! under insert-only bases.

use proptest::prelude::*;
use std::sync::Arc;
use uniqueness::engine::{MaintenanceMode, SharedEngine, SharedSession};
use uniqueness::workload::rng::SplitMix64;
use uniqueness::workload::{generate_corpus, random_instance};

/// Recompute-tier shape: the subquery makes delta evaluation
/// non-monotone, so the registry falls back to recompute-and-diff.
const ANTI_JOIN: &str = "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
     (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)";

/// One random insert-only write against `engine` (keys outside every
/// generator domain, supplier inserted first so FKs resolve).
fn apply_random_write(engine: &SharedEngine, rng: &mut SplitMix64, round: usize) {
    let sno = 100 + round as i64;
    let mut script =
        format!("INSERT INTO SUPPLIER VALUES ({sno}, 'Late', 'Toronto', 1, 'Active');");
    for p in 0..rng.gen_range(0..3usize) {
        script.push_str(&format!(
            " INSERT INTO PARTS VALUES ({sno}, {p}, 'part9', {}, 'RED');",
            1000 + 10 * round + p
        ));
    }
    if rng.gen_bool(0.3) {
        script.push_str(&format!(
            " INSERT INTO AGENTS VALUES ({sno}, 1, 'agent9', 'Ottawa');"
        ));
    }
    engine.execute(&script).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Incremental state == full recompute, after every write, for
    /// every subscribed corpus query, on every tier.
    #[test]
    fn incremental_views_equal_full_recompute(
        seed in 0u64..500,
        writes in 1usize..6,
    ) {
        let engine = Arc::new(SharedEngine::new(
            random_instance(seed, 12, 24, 12).unwrap(),
        ));
        let oracle = SharedSession::new(Arc::clone(&engine));
        let corpus = generate_corpus(seed, 6, 1).unwrap();
        let mut subscribed = Vec::new();
        for sql in corpus
            .iter()
            .map(|q| q.sql.as_str())
            .chain(std::iter::once(ANTI_JOIN))
        {
            let sub = engine
                .subscribe(sql, Box::new(|_, _| true))
                .unwrap_or_else(|e| panic!("{sql}: {e}"));
            // License-not-promise: the refcount-free tier is only ever
            // granted with a checked proof attached.
            if sub.mode == MaintenanceMode::Set {
                prop_assert!(sub.license.is_proved(), "unproved set tier for {}", sql);
            }
            subscribed.push((sub.id, sql.to_string()));
        }

        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xde17a);
        for round in 0..writes {
            apply_random_write(&engine, &mut rng, round);
            for (id, sql) in &subscribed {
                let view = engine
                    .subscription_rows(*id)
                    .expect("subscription survives plain INSERTs");
                let mut recompute = oracle.query(sql).unwrap().rows;
                recompute.sort();
                // View rows are already canonically sorted; corpus
                // queries are DISTINCT blocks, so multiset == sorted ==.
                prop_assert_eq!(
                    &view, &recompute,
                    "round {} diverged for {}", round, sql
                );
            }
        }
    }
}
