//! Property tests for the uniqueness analyses themselves (Theorem 1 /
//! Algorithm 1): a YES verdict must mean *no duplicates on any valid
//! instance* — here checked against batteries of random valid instances.

use proptest::prelude::*;
use std::collections::HashMap;
use uniqueness::catalog::Row;
use uniqueness::core::algorithm1::{algorithm1, Algorithm1Options};
use uniqueness::core::analysis::{single_tuple_condition, unique_projection};
use uniqueness::engine::{ExecOptions, Executor};
use uniqueness::plan::{bind_query, BoundExpr, HostVars};
use uniqueness::sql::{parse_query, Distinct};
use uniqueness::workload::{generate_corpus, random_instance};

fn has_duplicates(db: &uniqueness::catalog::Database, sql: &str) -> bool {
    let mut bound = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
    if let uniqueness::plan::BoundQuery::Spec(spec) = &mut bound {
        spec.distinct = Distinct::All;
    }
    let hv = HostVars::new();
    let mut ex = Executor::new(db, &hv, ExecOptions::default());
    let rows = ex.run(&bound).unwrap();
    let mut seen: HashMap<Row, usize> = HashMap::new();
    for r in rows {
        let c = seen.entry(r).or_insert(0);
        *c += 1;
        if *c > 1 {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// YES from either analysis ⇒ no duplicates, ever.
    #[test]
    fn yes_verdicts_are_sound(qseed in 0u64..1000, iseed in 0u64..1000) {
        let corpus = generate_corpus(qseed, 4, 0).unwrap();
        let schema = uniqueness::catalog::sample::supplier_schema().unwrap();
        let dbs: Vec<_> = (0..3)
            .map(|k| random_instance(iseed.wrapping_add(k * 7919), 12, 28, 12).unwrap())
            .collect();
        for q in &corpus {
            let bound = bind_query(schema.catalog(), &parse_query(&q.sql).unwrap()).unwrap();
            let spec = bound.as_spec().unwrap();
            let alg1 = algorithm1(spec, &Algorithm1Options::default()).unique;
            let fd = unique_projection(spec).unique;
            if alg1 || fd {
                for db in &dbs {
                    prop_assert!(
                        !has_duplicates(db, &q.sql),
                        "proved unique but duplicated: {} (alg1={}, fd={})",
                        q.sql, alg1, fd
                    );
                }
            }
            // The FD test subsumes the (soundly-implemented) Algorithm 1.
            if alg1 {
                prop_assert!(fd, "Algorithm 1 YES but FD NO for {}", q.sql);
            }
        }
    }

    /// Theorem 2's single-tuple condition: a YES subquery block matches at
    /// most one tuple per outer row.
    #[test]
    fn single_tuple_condition_is_sound(iseed in 0u64..1000, pno in 1i64..6) {
        let db = random_instance(iseed, 10, 25, 10).unwrap();
        let sql = format!(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = {pno})"
        );
        let bound = bind_query(db.catalog(), &parse_query(&sql).unwrap()).unwrap();
        let spec = bound.as_spec().unwrap();
        let BoundExpr::Exists { subquery, .. } = spec.predicate.as_ref().unwrap() else {
            panic!("expected EXISTS");
        };
        let verdict = single_tuple_condition(subquery);
        prop_assert!(verdict.unique, "key-pinning subquery should pass");
        // Check empirically: per supplier, at most one matching part.
        let suppliers = db.rows(&"SUPPLIER".into()).unwrap();
        let parts = db.rows(&"PARTS".into()).unwrap();
        for s in suppliers {
            let matches = parts
                .iter()
                .filter(|p| p[0] == s[0] && p[1] == uniqueness::types::Value::Int(pno))
                .count();
            prop_assert!(matches <= 1);
        }
    }
}

/// Deterministic checks that the known *incompletenesses* stay incomplete
/// (so the implementation stays faithful to the paper's algorithm).
#[test]
fn algorithm1_known_gaps() {
    let db = uniqueness::catalog::sample::supplier_schema().unwrap();
    // Line 10: no usable predicate → NO, even with keys projected.
    let bound = bind_query(
        db.catalog(),
        &parse_query("SELECT DISTINCT S.SNO FROM SUPPLIER S").unwrap(),
    )
    .unwrap();
    let out = algorithm1(bound.as_spec().unwrap(), &Algorithm1Options::default());
    assert!(!out.unique);
    // …while the FD test answers YES.
    assert!(unique_projection(bound.as_spec().unwrap()).unique);
}

#[test]
fn no_verdict_examples_do_duplicate() {
    // Completeness sanity (not guaranteed by the theory, but by our
    // corpus): some query judged NO must actually duplicate somewhere,
    // otherwise the tests above are vacuous.
    let corpus = generate_corpus(5, 60, 5).unwrap();
    assert!(corpus.iter().any(|q| !q.fd_unique && q.duplicates_observed));
}
