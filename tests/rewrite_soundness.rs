//! Property tests: every rewrite the optimizer applies preserves query
//! semantics, on randomized schemas-with-data and randomized queries.
//!
//! The oracle is execution itself: run the original and the optimized
//! query on the same instance and compare result *multisets* under the
//! structural equality that coincides with `=̇`.

use proptest::prelude::*;
use std::collections::HashMap;
use uniqueness::catalog::Row;
use uniqueness::core::pipeline::{Optimizer, OptimizerOptions};
use uniqueness::engine::{DistinctMethod, ExecOptions, Executor, JoinMethod};
use uniqueness::plan::{bind_query, HostVars};
use uniqueness::sql::parse_query;
use uniqueness::workload::{generate_corpus, random_instance};

fn multiset(rows: &[Row]) -> HashMap<Row, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.clone()).or_insert(0) += 1;
    }
    m
}

fn run(
    db: &uniqueness::catalog::Database,
    q: &uniqueness::plan::BoundQuery,
    exec: ExecOptions,
) -> Vec<Row> {
    let hv = HostVars::new();
    let mut ex = Executor::new(db, &hv, exec);
    ex.run(q).expect("execution succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Relational-profile rewrites preserve semantics on corpus queries.
    #[test]
    fn relational_rewrites_preserve_semantics(
        qseed in 0u64..500, iseed in 0u64..500
    ) {
        let corpus = generate_corpus(qseed, 3, 0).unwrap();
        let db = random_instance(iseed, 10, 24, 10).unwrap();
        let optimizer = Optimizer::new(OptimizerOptions::relational());
        for q in &corpus {
            let bound = bind_query(db.catalog(), &parse_query(&q.sql).unwrap()).unwrap();
            let outcome = optimizer.optimize(&bound);
            let base = run(&db, &bound, ExecOptions::default());
            let opt = run(&db, &outcome.query, ExecOptions::default());
            prop_assert_eq!(
                multiset(&base),
                multiset(&opt),
                "rewrite diverged for {} (steps {:?})",
                q.sql,
                outcome.trace.steps.iter().map(|s| s.rule).collect::<Vec<_>>()
            );
        }
    }

    /// Navigational-profile rewrites preserve semantics too.
    #[test]
    fn navigational_rewrites_preserve_semantics(
        qseed in 0u64..300, iseed in 0u64..300
    ) {
        let corpus = generate_corpus(qseed.wrapping_mul(31), 3, 0).unwrap();
        let db = random_instance(iseed, 8, 20, 8).unwrap();
        let optimizer = Optimizer::new(OptimizerOptions::navigational());
        for q in &corpus {
            let bound = bind_query(db.catalog(), &parse_query(&q.sql).unwrap()).unwrap();
            let outcome = optimizer.optimize(&bound);
            let base = run(&db, &bound, ExecOptions::default());
            let opt = run(&db, &outcome.query, ExecOptions::default());
            prop_assert_eq!(multiset(&base), multiset(&opt), "{}", q.sql);
        }
    }

    /// All four physical configurations agree with each other.
    #[test]
    fn physical_strategies_agree(qseed in 0u64..300, iseed in 0u64..300) {
        let corpus = generate_corpus(qseed.wrapping_add(9000), 2, 0).unwrap();
        let db = random_instance(iseed, 9, 18, 9).unwrap();
        for q in &corpus {
            let bound = bind_query(db.catalog(), &parse_query(&q.sql).unwrap()).unwrap();
            let reference = run(&db, &bound, ExecOptions::default());
            for join in [JoinMethod::Hash, JoinMethod::NestedLoop] {
                for distinct in [DistinctMethod::Sort, DistinctMethod::Hash] {
                    let rows = run(&db, &bound, ExecOptions { join, distinct, ..Default::default() });
                    prop_assert_eq!(
                        multiset(&reference),
                        multiset(&rows),
                        "{} with {:?}/{:?}",
                        q.sql, join, distinct
                    );
                }
            }
        }
    }
}

/// Deterministic regression: the EXISTS-heavy shapes the random corpus
/// does not generate.
#[test]
fn handwritten_exists_shapes_preserve_semantics() {
    let db = random_instance(77, 12, 30, 12).unwrap();
    let optimizer = Optimizer::new(OptimizerOptions::relational());
    for sql in [
        // Theorem 2 (single tuple).
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 2)",
        // Corollary 1 (key-projecting outer).
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        // DISTINCT outer, unrestricted subquery.
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO)",
        // NOT EXISTS must never merge.
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
        // Nested EXISTS inside EXISTS.
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = 1 AND EXISTS \
          (SELECT * FROM AGENTS A WHERE A.SNO = P.SNO))",
        // IN subquery (never merged; 3VL semantics must survive).
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SNO IN \
         (SELECT P.SNO FROM PARTS P WHERE P.COLOR = 'RED')",
        // Set operations over specs with nullable columns.
        "SELECT ALL P.OEM-PNO FROM PARTS P INTERSECT SELECT ALL P.OEM-PNO FROM PARTS P \
         WHERE P.COLOR = 'RED'",
        "SELECT ALL S.BUDGET FROM SUPPLIER S EXCEPT SELECT ALL S.BUDGET FROM SUPPLIER S \
         WHERE S.SCITY = 'Toronto'",
    ] {
        let bound = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let outcome = optimizer.optimize(&bound);
        let base = run(&db, &bound, ExecOptions::default());
        let opt = run(&db, &outcome.query, ExecOptions::default());
        assert_eq!(
            multiset(&base),
            multiset(&opt),
            "diverged: {sql}\nsteps: {:#?}",
            outcome.trace.steps
        );
    }
}

/// Every intermediate step of the trace is faithful *and* sound: each
/// [`RewriteStep`] over an example suite that exercises all seven
/// rules retains the exact bound before/after ASTs the driver saw, so
/// no re-parse or re-bind is needed. A step the U-semiring checker
/// certified (`proof=✓`) is trusted symbolically; the execution oracle
/// runs only as the fallback for `PropertyTested` steps — exactly the
/// division of labor `EXPLAIN` advertises.
///
/// [`RewriteStep`]: uniqueness::core::pipeline::RewriteStep
#[test]
fn every_trace_step_executes_equivalently() {
    let suite = [
        // Theorem 1: DISTINCT over a key-projecting join (Example 1).
        "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
         WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        // Theorem 2 / Corollary 1: EXISTS merges.
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 2)",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        // Theorem 3 / Corollary 2: set-operation lowerings (Example 9).
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' INTERSECT \
         SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
        "SELECT ALL S.SNO FROM SUPPLIER S EXCEPT \
         SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
        // §7: join elimination via the FK inclusion dependency.
        "SELECT ALL P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        // §6: join → subquery under the navigational profile (the same
        // shape the relational profile leaves alone).
        "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
         FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.PNO = 2",
        // Multi-site convergence: steps fire inside set-op operands, so
        // before/after SQL must re-embed the subtree in the full query.
        "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
         UNION ALL SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Ottawa' \
         UNION ALL SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.BUDGET = 7",
        // Cascade: several firings at one node, trace chains through all.
        "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = 1) AND EXISTS \
         (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO AND A.ANO = 2)",
        // Proof-gated DISTINCT pushdown (navigational profile): PARTS
        // is unprojected and the remaining projection covers the
        // SUPPLIER key, so the checker licenses the elision.
        "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
    ];
    let instances: Vec<_> = [5u64, 17, 42]
        .iter()
        .map(|&seed| random_instance(seed, 10, 24, 10).unwrap())
        .collect();
    let mut fired = std::collections::HashSet::new();
    let mut checked_steps = 0usize;
    let mut proved_steps = 0usize;
    for options in [
        OptimizerOptions::relational(),
        OptimizerOptions::navigational(),
    ] {
        let optimizer = Optimizer::new(options);
        for sql in suite {
            let catalog = instances[0].catalog();
            let bound = bind_query(catalog, &parse_query(sql).unwrap()).unwrap();
            let outcome = optimizer.optimize(&bound);
            for step in &outcome.trace.steps {
                fired.insert(step.rule);
                checked_steps += 1;
                if step.proof.is_proved() {
                    // Symbolically certified — the execution oracle is
                    // reserved for steps the checker could not decide.
                    proved_steps += 1;
                    continue;
                }
                for db in &instances {
                    let b = run(db, &step.before, ExecOptions::default());
                    let a = run(db, &step.after, ExecOptions::default());
                    assert_eq!(
                        multiset(&b),
                        multiset(&a),
                        "step [{} / {}] not equivalence-preserving:\n  before: {}\n  after:  {}",
                        step.rule,
                        step.theorem,
                        step.sql_before,
                        step.sql_after
                    );
                }
            }
        }
    }
    assert!(checked_steps >= 12, "suite too thin: {checked_steps} steps");
    assert!(
        proved_steps * 5 >= checked_steps * 4,
        "checker too weak on the standard suite: {proved_steps}/{checked_steps} proved"
    );
    for rule in [
        "distinct-removal",
        "distinct-pushdown",
        "subquery-to-join",
        "join-to-subquery",
        "intersect-to-exists",
        "except-to-not-exists",
        "join-elimination",
    ] {
        assert!(fired.contains(rule), "suite never fired {rule}: {fired:?}");
    }
}

/// The symbolic checker's verdicts are themselves execution-checked:
/// every step it certifies as `Proved` on the optimizer's own traces
/// must be execution-equivalent on randomized instances. (The inverse
/// guard — known-inequivalent pairs are never `Proved` — lives in
/// `tests/proof_soundness.rs`.)
#[test]
fn proved_steps_are_execution_equivalent() {
    let instances: Vec<_> = [3u64, 29, 71]
        .iter()
        .map(|&seed| random_instance(seed, 10, 24, 10).unwrap())
        .collect();
    let mut proved = 0usize;
    for options in [
        OptimizerOptions::relational(),
        OptimizerOptions::navigational(),
    ] {
        let optimizer = Optimizer::new(options);
        for qseed in 0u64..12 {
            let corpus = generate_corpus(qseed.wrapping_mul(131), 3, 0).unwrap();
            for q in &corpus {
                let bound =
                    bind_query(instances[0].catalog(), &parse_query(&q.sql).unwrap()).unwrap();
                let outcome = optimizer.optimize(&bound);
                for step in outcome.trace.steps.iter().filter(|s| s.proof.is_proved()) {
                    proved += 1;
                    for db in &instances {
                        let b = run(db, &step.before, ExecOptions::default());
                        let a = run(db, &step.after, ExecOptions::default());
                        assert_eq!(
                            multiset(&b),
                            multiset(&a),
                            "PROVED step diverged — checker unsound!\n  rule: {}\n  {}\n  \
                             before: {}\n  after:  {}",
                            step.rule,
                            step.proof,
                            step.sql_before,
                            step.sql_after
                        );
                    }
                }
            }
        }
    }
    assert!(
        proved >= 20,
        "corpus produced too few proved steps: {proved}"
    );
}

/// The merge machinery renumbers deeply-nested correlations correctly.
#[test]
fn nested_correlation_merge_is_sound() {
    let db = random_instance(123, 10, 25, 10).unwrap();
    let optimizer = Optimizer::new(OptimizerOptions::relational());
    // Inner subquery references BOTH enclosing blocks.
    let sql = "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
               (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = 3 AND EXISTS \
                (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO AND A.ANO = P.PNO))";
    let bound = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
    let outcome = optimizer.optimize(&bound);
    assert!(
        outcome
            .trace
            .steps
            .iter()
            .any(|s| s.rule == "subquery-to-join"),
        "expected a merge: {:#?}",
        outcome.trace.steps
    );
    let base = run(&db, &bound, ExecOptions::default());
    let opt = run(&db, &outcome.query, ExecOptions::default());
    assert_eq!(multiset(&base), multiset(&opt));
}
