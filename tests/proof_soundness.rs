//! Adversarial soundness corpus for the U-semiring checker.
//!
//! The checker is allowed to answer `Unknown` on anything, but a false
//! `Proved` would silently license a wrong rewrite — so this suite
//! collects pairs that are *known inequivalent* (each breaks one
//! specific side condition of a theorem the checker implements) and
//! asserts the verdict is never `Proved`. Each pair is also executed on
//! randomized instances to certify the corpus itself: every pair must
//! produce different result multisets on at least one instance, so the
//! corpus can never rot into accidentally-equivalent pairs that prove
//! nothing.

use std::collections::HashMap;
use uniqueness::catalog::Row;
use uniqueness::engine::{ExecOptions, Executor};
use uniqueness::plan::{bind_query, BoundQuery, HostVars};
use uniqueness::proof::{check_equiv, Verdict};
use uniqueness::sql::parse_query;
use uniqueness::workload::random_instance;

/// (label, before, after) — every pair inequivalent by construction.
const INEQUIVALENT_PAIRS: &[(&str, &str, &str)] = &[
    (
        "bag-vs-set: DISTINCT dropped on a non-key projection",
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S",
        "SELECT ALL S.SCITY FROM SUPPLIER S",
    ),
    (
        "bag-vs-set: DISTINCT dropped under a duplicating join",
        "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        "SELECT ALL S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
    ),
    (
        "different constant compared",
        "SELECT ALL P.PNO FROM PARTS P WHERE P.COLOR = 'RED'",
        "SELECT ALL P.PNO FROM PARTS P WHERE P.COLOR = 'BLUE'",
    ),
    (
        "range boundary: < weakened to <=",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.BUDGET < 5",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.BUDGET <= 5",
    ),
    (
        "predicate dropped entirely",
        "SELECT ALL P.PNO FROM PARTS P WHERE P.COLOR = 'RED'",
        "SELECT ALL P.PNO FROM PARTS P",
    ),
    (
        "EXISTS flipped to NOT EXISTS",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
    ),
    (
        "semijoin absorption without key coverage (bag semantics)",
        "SELECT ALL S.SCITY FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        "SELECT ALL S.SCITY FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
    ),
    (
        "join eliminated against the FK direction (child dropped)",
        "SELECT ALL S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        "SELECT ALL S.SNAME FROM SUPPLIER S",
    ),
    (
        "UNION deduplicates, UNION ALL concatenates",
        "SELECT ALL S.SCITY FROM SUPPLIER S UNION SELECT ALL A.ACITY FROM AGENTS A",
        "SELECT ALL S.SCITY FROM SUPPLIER S UNION ALL SELECT ALL A.ACITY FROM AGENTS A",
    ),
    (
        "EXCEPT operands swapped",
        "SELECT ALL S.SNO FROM SUPPLIER S EXCEPT SELECT ALL A.SNO FROM AGENTS A",
        "SELECT ALL A.SNO FROM AGENTS A EXCEPT SELECT ALL S.SNO FROM SUPPLIER S",
    ),
    (
        "INTERSECT lowered with plain = on a nullable column (loses =̇)",
        "SELECT ALL P.OEM-PNO FROM PARTS P INTERSECT \
         SELECT ALL Q.OEM-PNO FROM PARTS Q",
        "SELECT DISTINCT P.OEM-PNO FROM PARTS P WHERE EXISTS \
         (SELECT * FROM PARTS Q WHERE Q.OEM-PNO = P.OEM-PNO)",
    ),
    (
        "INTERSECT ALL lowered to EXISTS without restoring the lead DISTINCT",
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S INTERSECT ALL \
         SELECT A.ACITY FROM AGENTS A",
        "SELECT S.SCITY FROM SUPPLIER S WHERE EXISTS \
         (SELECT A.ACITY FROM AGENTS A \
          WHERE (S.SCITY IS NULL AND A.ACITY IS NULL) OR S.SCITY = A.ACITY)",
    ),
    (
        "INTERSECT lowered to EXISTS without deduplicating the lead block",
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S INTERSECT \
         SELECT A.ACITY FROM AGENTS A",
        "SELECT S.SCITY FROM SUPPLIER S WHERE EXISTS \
         (SELECT A.ACITY FROM AGENTS A \
          WHERE (S.SCITY IS NULL AND A.ACITY IS NULL) OR S.SCITY = A.ACITY)",
    ),
    (
        "different table scanned behind the same output name",
        "SELECT ALL S.SNO FROM SUPPLIER S",
        "SELECT ALL A.SNO FROM AGENTS A",
    ),
    (
        "different string constant compared",
        "SELECT ALL S.SNAME FROM SUPPLIER S WHERE S.STATUS = 'Active'",
        "SELECT ALL S.SNAME FROM SUPPLIER S WHERE S.STATUS = 'Inactive'",
    ),
    (
        "correlated predicate decorrelated wrongly (constant vs outer ref)",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = 1)",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = 1 AND P.PNO = 1)",
    ),
];

fn multiset(rows: &[Row]) -> HashMap<Row, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.clone()).or_insert(0) += 1;
    }
    m
}

fn run(db: &uniqueness::catalog::Database, q: &BoundQuery) -> Vec<Row> {
    let hv = HostVars::new();
    let mut ex = Executor::new(db, &hv, ExecOptions::default());
    ex.run(q).expect("execution succeeds")
}

/// The checker must refuse every pair — `Unknown` is the only sound
/// verdict on an inequivalent input; a single `Proved` here is a bug.
#[test]
fn inequivalent_pairs_are_never_proved() {
    let db = random_instance(11, 10, 24, 10).unwrap();
    for (label, before, after) in INEQUIVALENT_PAIRS {
        let b = bind_query(db.catalog(), &parse_query(before).unwrap()).unwrap();
        let a = bind_query(db.catalog(), &parse_query(after).unwrap()).unwrap();
        for (x, y) in [(&b, &a), (&a, &b)] {
            match check_equiv(x, y) {
                Verdict::Proved { strategy, detail } => panic!(
                    "FALSE PROOF on inequivalent pair [{label}]:\n  \
                     strategy: {strategy}\n  detail: {detail}\n  \
                     before: {before}\n  after:  {after}"
                ),
                Verdict::Unknown { .. } => {}
            }
        }
    }
}

/// Corpus self-certification: every pair really is inequivalent — the
/// two queries produce different multisets on at least one of the
/// instances (three randomized ones plus the Figure 1 sample database,
/// whose overlapping supplier/agent cities witness the set-operation
/// pairs the random city pools cannot). Guards the suite against
/// rotting into accidentally-equivalent pairs that assert nothing.
#[test]
fn the_adversarial_corpus_is_genuinely_inequivalent() {
    let mut instances: Vec<_> = [11u64, 47, 90]
        .iter()
        .map(|&seed| random_instance(seed, 10, 24, 10).unwrap())
        .collect();
    instances.push(uniqueness::catalog::sample::supplier_database().unwrap());
    for (label, before, after) in INEQUIVALENT_PAIRS {
        let witnessed = instances.iter().any(|db| {
            let b = bind_query(db.catalog(), &parse_query(before).unwrap()).unwrap();
            let a = bind_query(db.catalog(), &parse_query(after).unwrap()).unwrap();
            multiset(&run(db, &b)) != multiset(&run(db, &a))
        });
        assert!(
            witnessed,
            "corpus pair [{label}] never differed on any instance — \
             it asserts nothing; replace it or reseed the instances"
        );
    }
}

/// And the full cross-product stays sound under *equivalent* inputs
/// too: a pair the checker proves must agree everywhere. (Spot-check of
/// the positive direction at the integration level; the rule-level
/// proofs live in the crate's unit tests.)
#[test]
fn proved_pairs_execute_identically() {
    let pairs = [
        (
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            "SELECT ALL S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        ),
        (
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
        ),
        (
            "SELECT ALL P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            "SELECT ALL P.PNO, P.PNAME FROM PARTS P",
        ),
    ];
    let instances: Vec<_> = [7u64, 23, 61]
        .iter()
        .map(|&seed| random_instance(seed, 10, 24, 10).unwrap())
        .collect();
    for (before, after) in pairs {
        let b = bind_query(instances[0].catalog(), &parse_query(before).unwrap()).unwrap();
        let a = bind_query(instances[0].catalog(), &parse_query(after).unwrap()).unwrap();
        let verdict = check_equiv(&b, &a);
        assert!(
            verdict.is_proved(),
            "expected a proof for {before} ≡ {after}: {verdict:?}"
        );
        for db in &instances {
            assert_eq!(
                multiset(&run(db, &b)),
                multiset(&run(db, &a)),
                "proved pair diverged: {before} vs {after}"
            );
        }
    }
}
