//! End-to-end reproduction of every worked example in the paper, on the
//! Figure 1 sample instance: analysis verdicts, applied rewrites, and
//! result equivalence between original and rewritten forms.

use std::collections::HashMap;
use uniqueness::catalog::Row;
use uniqueness::core::pipeline::{Optimizer, OptimizerOptions};
use uniqueness::engine::{ExecOptions, Executor, Session};
use uniqueness::plan::{bind_query, HostVars};
use uniqueness::sql::parse_query;
use uniqueness::types::Value;

fn multiset(rows: &[Row]) -> HashMap<Row, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.clone()).or_insert(0) += 1;
    }
    m
}

/// Optimize under `opts`; assert the given rules fired (in order) and the
/// rewritten query returns the same multiset as the original.
fn check(
    session: &Session,
    sql: &str,
    hv: &HostVars,
    opts: OptimizerOptions,
    expected_rules: &[&str],
) -> Vec<Row> {
    let bound = bind_query(session.db.catalog(), &parse_query(sql).unwrap()).unwrap();
    let outcome = Optimizer::new(opts).optimize(&bound);
    let rules: Vec<&str> = outcome.trace.steps.iter().map(|s| s.rule).collect();
    assert_eq!(
        rules, expected_rules,
        "for {sql}\nsteps: {:#?}",
        outcome.trace.steps
    );
    let mut ex = Executor::new(&session.db, hv, ExecOptions::default());
    let original = ex.run(&bound).unwrap();
    let mut ex = Executor::new(&session.db, hv, ExecOptions::default());
    let rewritten = ex.run(&outcome.query).unwrap();
    assert_eq!(
        multiset(&original),
        multiset(&rewritten),
        "rewrite changed semantics for {sql}"
    );
    original
}

#[test]
fn example_1_distinct_removed_rows_match_paper() {
    let s = Session::sample().unwrap();
    let rows = check(
        &s,
        "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
         WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        &HostVars::new(),
        OptimizerOptions::relational(),
        &["distinct-removal"],
    );
    // Red parts: (1,10), (2,10), (3,10), (3,13).
    assert_eq!(rows.len(), 4);
}

#[test]
fn example_2_no_rewrite_duplicates_collapse() {
    let s = Session::sample().unwrap();
    let rows = check(
        &s,
        "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
         WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        &HostVars::new(),
        OptimizerOptions::relational(),
        &[],
    );
    // Both Acmes supply part 10 'bolt' → the DISTINCT collapses one row.
    assert_eq!(rows.len(), 3);
}

#[test]
fn example_3_derived_key_semantics() {
    // The ALL query of Example 3: PNO keys the derived table when
    // :SUPPLIER-NO pins the supplier.
    let s = Session::sample().unwrap();
    let hv = HostVars::new().with("SUPPLIER-NO", 3i64);
    let out = s
        .query_with(
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
            &hv,
        )
        .unwrap();
    // Supplier 3 supplies parts 10 and 13: two rows, distinct PNOs.
    assert_eq!(out.rows.len(), 2);
    let pnos: Vec<&Value> = out.rows.iter().map(|r| &r[2]).collect();
    assert_ne!(pnos[0], pnos[1]);
}

#[test]
fn examples_4_and_5_distinct_removed_with_host_variable() {
    let s = Session::sample().unwrap();
    let hv = HostVars::new().with("SUPPLIER-NO", 1i64);
    let rows = check(
        &s,
        "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
         WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
        &hv,
        OptimizerOptions::relational(),
        &["distinct-removal"],
    );
    assert_eq!(rows.len(), 2); // parts 10, 11 of supplier 1
}

#[test]
fn example_6_distinct_removed() {
    let s = Session::sample().unwrap();
    let hv = HostVars::new().with("SUPPLIER-NAME", "Acme");
    let rows = check(
        &s,
        "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, PARTS P \
         WHERE S.SNAME = :SUPPLIER-NAME AND S.SNO = P.SNO",
        &hv,
        OptimizerOptions::relational(),
        &["distinct-removal"],
    );
    // Two Acmes (1, 3): parts (1,10), (1,11), (3,10), (3,13).
    assert_eq!(rows.len(), 4);
}

#[test]
fn example_7_subquery_to_join_theorem_2() {
    let s = Session::sample().unwrap();
    let hv = HostVars::new()
        .with("SUPPLIER-NAME", "Acme")
        .with("PART-NO", 10i64);
    let rows = check(
        &s,
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
         WHERE S.SNAME = :SUPPLIER-NAME AND EXISTS \
         (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)",
        &hv,
        OptimizerOptions::relational(),
        &["subquery-to-join"],
    );
    assert_eq!(rows.len(), 2); // both Acmes supply part 10
}

#[test]
fn example_8_subquery_to_distinct_join_corollary_1() {
    let s = Session::sample().unwrap();
    let rows = check(
        &s,
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        &HostVars::new(),
        OptimizerOptions::relational(),
        &["subquery-to-join"],
    );
    // Suppliers 1, 2, 3 supply red parts; supplier 3 supplies two red
    // parts but must appear once (ALL over SUPPLIER, one row each).
    assert_eq!(rows.len(), 3);
}

#[test]
fn example_9_intersect_to_exists_then_join() {
    let s = Session::sample().unwrap();
    let rows = check(
        &s,
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
         INTERSECT \
         SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
        &HostVars::new(),
        OptimizerOptions::relational(),
        &["intersect-to-exists", "subquery-to-join"],
    );
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn example_10_navigational_join_to_subquery() {
    let s = Session::sample().unwrap();
    let hv = HostVars::new().with("PARTNO", 10i64);
    let rows = check(
        &s,
        "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
         FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
        &hv,
        OptimizerOptions::navigational(),
        &["join-to-subquery"],
    );
    assert_eq!(rows.len(), 3); // suppliers 1, 2, 3 supply part 10
}

#[test]
fn example_11_navigational_with_range() {
    let s = Session::sample().unwrap();
    let hv = HostVars::new().with("PARTNO", 10i64);
    let rows = check(
        &s,
        "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
         FROM SUPPLIER S, PARTS P \
         WHERE S.SNO BETWEEN 2 AND 3 AND S.SNO = P.SNO AND P.PNO = :PARTNO",
        &hv,
        OptimizerOptions::navigational(),
        &["join-to-subquery"],
    );
    assert_eq!(rows.len(), 2);
}

#[test]
fn theorem_3_null_aware_correlation_is_required() {
    // The Starburst Rule 8 pitfall: INTERSECT over nullable columns must
    // match NULL =̇ NULL. Build two tables whose only common "value" is
    // NULL and check the rewritten query still finds it.
    let mut s = Session::new(uniqueness::catalog::Database::new());
    s.run_script(
        "CREATE TABLE L (K INTEGER NOT NULL, X INTEGER, PRIMARY KEY (K));
         CREATE TABLE R2 (K INTEGER NOT NULL, X INTEGER, PRIMARY KEY (K));
         INSERT INTO L VALUES (1, NULL), (2, 10);
         INSERT INTO R2 VALUES (7, NULL), (8, 20);",
    )
    .unwrap();
    let sql = "SELECT ALL L.X FROM L INTERSECT SELECT ALL R2.X FROM R2";
    let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
    assert_eq!(
        base.rows,
        vec![vec![Value::Null]],
        "INTERSECT matches NULLs"
    );
    let opt = s.query(sql).unwrap();
    assert!(
        opt.trace
            .steps
            .iter()
            .any(|st| st.rule == "intersect-to-exists"),
        "{:#?}",
        opt.trace.steps
    );
    assert_eq!(multiset(&opt.rows), multiset(&base.rows));
    // And the rewritten SQL carries the explicit IS NULL arm.
    let step = &opt.trace.steps[0];
    assert!(
        step.sql_after.contains("IS NULL"),
        "null-aware predicate missing: {}",
        step.sql_after
    );
}

#[test]
fn except_extension_preserves_semantics() {
    let s = Session::sample().unwrap();
    for sql in [
        "SELECT ALL S.SNO FROM SUPPLIER S EXCEPT SELECT ALL A.SNO FROM AGENTS A",
        "SELECT ALL S.SNO FROM SUPPLIER S EXCEPT ALL SELECT ALL A.SNO FROM AGENTS A",
        "SELECT ALL P.PNAME FROM PARTS P EXCEPT SELECT ALL S.SNAME FROM SUPPLIER S",
    ] {
        let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        let opt = s.query(sql).unwrap();
        assert_eq!(multiset(&opt.rows), multiset(&base.rows), "{sql}");
    }
}

#[test]
fn intersect_all_multiplicities_survive_rewrite() {
    let mut s = Session::new(uniqueness::catalog::Database::new());
    s.run_script(
        "CREATE TABLE L (K INTEGER NOT NULL, V INTEGER, PRIMARY KEY (K));
         CREATE TABLE R2 (V INTEGER);
         INSERT INTO L VALUES (1, 10), (2, 10), (3, 20);
         INSERT INTO R2 VALUES (10), (10), (10), (20), (30);",
    )
    .unwrap();
    // Left has V duplicates (10 twice): INTERSECT ALL min-counts. The
    // left operand is NOT unique on V, but the right is not unique
    // either — no rewrite; semantics still correct end to end.
    let sql = "SELECT ALL L.V FROM L INTERSECT ALL SELECT ALL R2.V FROM R2";
    let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
    let opt = s.query(sql).unwrap();
    assert_eq!(multiset(&opt.rows), multiset(&base.rows));
    // min(2,3) copies of 10 + min(1,1) of 20.
    assert_eq!(base.rows.len(), 3);
}
