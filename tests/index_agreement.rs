//! Secondary-index agreement and maintenance properties (E19).
//!
//! The full-scan row executor is the oracle: for every statement, the
//! cost-based session over the *same* indexed database — whose plans
//! route sargable selections through `IxScan` and key joins through
//! `IxJoin` — must return the oracle's multiset. Index access paths may
//! only change *how much work* a query costs, never *which rows* it
//! returns.
//!
//! Coverage:
//! * incremental maintenance: after any interleaving of backfill and
//!   `INSERT`s, every index equals a from-scratch rebuild of its table
//!   (`Database::index_entries` is the rebuild-agreement oracle);
//! * a unique index enforces its key with the same violation error a
//!   declared `UNIQUE` constraint produces — at backfill and on insert;
//! * fixed sargable statements plus property tests over random
//!   instances × parallel degrees 1–4, including post-`INSERT` runs
//!   where the cached plans must serve the new rows through the
//!   *maintained* indexes.

use proptest::prelude::*;
use uniqueness::catalog::Database;
use uniqueness::engine::Session;
use uniqueness::sql::parse_statement;
use uniqueness::types::value::tuple_null_cmp;
use uniqueness::types::{Error, Value};
use uniqueness::workload::random_instance;

/// The index set built over every random instance: the unique supplier
/// key (ordered), a non-unique city index, a hash-only color index and
/// a composite ordered index matching the `PARTS` primary key.
const INDEX_DDL: &str = "CREATE UNIQUE INDEX IDX_S_SNO ON SUPPLIER (SNO);
     CREATE INDEX IDX_S_CITY ON SUPPLIER (SCITY);
     CREATE INDEX IDX_P_COLOR ON PARTS (COLOR) USING HASH;
     CREATE INDEX IDX_P_SNO_PNO ON PARTS (SNO, PNO);";

/// Sargable shapes: point and range `IxScan`s on unique, non-unique,
/// hash and composite indexes, and `IxJoin`s probing the supplier key.
fn sargable_statements() -> Vec<&'static str> {
    vec![
        "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 7",
        "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO > 5 AND S.SNO <= 15",
        "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO BETWEEN 3 AND 9",
        "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto'",
        "SELECT P.PNO FROM PARTS P WHERE P.COLOR = 'RED'",
        "SELECT P.PNAME FROM PARTS P WHERE P.SNO = 3 AND P.PNO >= 2",
        "SELECT P.PNO, S.SNAME FROM PARTS P, SUPPLIER S \
         WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P \
         WHERE S.SNO = P.SNO AND P.PNO = 1",
        "SELECT S.SNO, P.PNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A \
         WHERE S.SNO = P.SNO AND S.SNO = A.SNO AND P.COLOR = 'GREEN'",
        // NULL comparisons match nothing — through an index or not.
        "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = NULL",
    ]
}

fn indexed_instance(seed: u64, suppliers: usize, parts: usize) -> Database {
    let mut db = random_instance(seed, suppliers, parts, suppliers).unwrap();
    db.run_script(INDEX_DDL).unwrap();
    db
}

fn sorted_rows(session: &Session, sql: &str) -> Vec<Vec<Value>> {
    let mut rows = session
        .query(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .rows;
    rows.sort_by(|a, b| tuple_null_cmp(a, b).unwrap());
    rows
}

/// Rebuild an index's contents from the stored rows, from scratch.
fn rebuilt_entries(db: &Database, table: &str, columns: &[usize]) -> Vec<(Vec<Value>, Vec<usize>)> {
    let mut map: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    for (pos, row) in db.rows(&table.into()).unwrap().iter().enumerate() {
        let key: Vec<Value> = columns.iter().map(|&c| row[c].clone()).collect();
        match map.iter_mut().find(|(k, _)| *k == key) {
            Some((_, positions)) => positions.push(pos),
            None => map.push((key, vec![pos])),
        }
    }
    map.sort_by(|(a, _), (b, _)| tuple_null_cmp(a, b).unwrap());
    map
}

fn assert_indexes_match_rebuild(db: &Database) {
    for (table, index, columns) in [
        ("SUPPLIER", "IDX_S_SNO", vec![0]),
        ("SUPPLIER", "IDX_S_CITY", vec![2]),
        ("PARTS", "IDX_P_COLOR", vec![4]),
        ("PARTS", "IDX_P_SNO_PNO", vec![0, 1]),
    ] {
        let mut live = db.index_entries(&table.into(), index).unwrap();
        for (_, positions) in &mut live {
            positions.sort_unstable();
        }
        live.sort_by(|(a, _), (b, _)| tuple_null_cmp(a, b).unwrap());
        assert_eq!(
            live,
            rebuilt_entries(db, table, &columns),
            "{index} diverged from a from-scratch rebuild"
        );
    }
}

/// A unique index must reject a duplicate insert with the same error a
/// declared `UNIQUE` constraint produces — and reject backfill over
/// already-duplicated data the same way.
#[test]
fn unique_index_violations_match_declared_keys() {
    let declared_err = {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE D (A INTEGER NOT NULL, B INTEGER, \
             PRIMARY KEY (A), UNIQUE (B)); \
             INSERT INTO D VALUES (1, 10);",
        )
        .unwrap();
        db.run_script("INSERT INTO D VALUES (2, 10);").unwrap_err()
    };
    let indexed_err = {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE D (A INTEGER NOT NULL, B INTEGER, PRIMARY KEY (A)); \
             CREATE UNIQUE INDEX IDX_D_B ON D (B); \
             INSERT INTO D VALUES (1, 10);",
        )
        .unwrap();
        db.run_script("INSERT INTO D VALUES (2, 10);").unwrap_err()
    };
    match (&declared_err, &indexed_err) {
        (
            Error::ConstraintViolation {
                table: dt,
                message: dm,
            },
            Error::ConstraintViolation {
                table: it,
                message: im,
            },
        ) => {
            assert_eq!(dt, it);
            assert_eq!(
                dm, im,
                "declared-key and unique-index errors must read the same"
            );
        }
        other => panic!("expected two constraint violations, got {other:?}"),
    }

    // Backfill over duplicate data is the same violation, and a failed
    // CREATE INDEX must leave no half-built index behind.
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE D (A INTEGER NOT NULL, B INTEGER, PRIMARY KEY (A)); \
         INSERT INTO D VALUES (1, 10); INSERT INTO D VALUES (2, 10);",
    )
    .unwrap();
    let ci = parse_statement("CREATE UNIQUE INDEX IDX_D_B ON D (B)").unwrap();
    let uniqueness::sql::Statement::CreateIndex(ci) = ci else {
        panic!("expected CREATE INDEX")
    };
    assert!(matches!(
        db.create_index(&ci),
        Err(Error::ConstraintViolation { .. })
    ));
    assert!(db.index_entries(&"D".into(), "IDX_D_B").is_err());
    db.run_script("INSERT INTO D VALUES (3, 11);").unwrap();
}

/// CI fast lane: a fixed instance agrees on every sargable statement
/// and the maintained indexes match a from-scratch rebuild.
#[test]
fn indexed_plans_agree_on_a_fixed_instance() {
    let db = indexed_instance(42, 15, 40);
    assert_indexes_match_rebuild(&db);
    let oracle = Session::new(db.clone());
    let indexed = Session::new(db).with_cost_based();
    for sql in sargable_statements() {
        assert_eq!(
            sorted_rows(&indexed, sql),
            sorted_rows(&oracle, sql),
            "indexed multiset differs for {sql}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random instances × degrees 1–4: the cost-based session over the
    /// indexed database returns the full-scan oracle's multiset for
    /// every sargable statement.
    #[test]
    fn indexed_plans_match_the_full_scan_oracle(
        seed in 0u64..1_000,
        degree in 1usize..5,
        suppliers in 5usize..30,
        parts in 5usize..60,
    ) {
        let db = indexed_instance(seed, suppliers, parts);
        let oracle = Session::new(db.clone());
        let mut indexed = Session::new(db);
        if degree > 1 {
            indexed = indexed.with_degree(degree);
        }
        let indexed = indexed.with_cost_based();
        for sql in sargable_statements() {
            prop_assert_eq!(
                sorted_rows(&indexed, sql),
                sorted_rows(&oracle, sql),
                "degree {} differs for {}", degree, sql
            );
        }
    }

    /// Maintenance: `INSERT`s after the backfill keep every index equal
    /// to a from-scratch rebuild, and cached index plans — compiled
    /// before the insert — serve the new rows through the maintained
    /// index (a plain `INSERT` does not invalidate plans; the index is
    /// simply *live*).
    #[test]
    fn inserts_maintain_indexes_and_cached_plans_see_new_rows(
        seed in 0u64..1_000,
    ) {
        let db = indexed_instance(seed, 10, 20);
        let mut oracle = Session::new(db.clone());
        let mut indexed = Session::new(db).with_cost_based();
        // Compile (and cache) every plan before the mutation.
        for sql in sargable_statements() {
            sorted_rows(&indexed, sql);
        }
        // SNO 21 lies outside the generator's 1..=20 domain, so the
        // inserts can never clash with an existing candidate key.
        // The OEM-PNO 999 lies outside the generator's 100..=120 pool,
        // so neither insert can clash with an existing candidate key.
        let script = "INSERT INTO SUPPLIER VALUES (21, 'Late', 'Toronto', 3, 'Active'); \
                      INSERT INTO PARTS VALUES (21, 1, 'part9', 999, 'RED');";
        oracle.run_script(script).unwrap();
        indexed.run_script(script).unwrap();
        assert_indexes_match_rebuild(&indexed.db);
        for sql in sargable_statements() {
            prop_assert_eq!(
                sorted_rows(&indexed, sql),
                sorted_rows(&oracle, sql),
                "post-INSERT differs for {}", sql
            );
        }
        // The new supplier is reachable through the cached point plan.
        let out = indexed.query("SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 21").unwrap();
        prop_assert_eq!(&out.rows, &vec![vec![Value::str("Late")]]);
    }
}
