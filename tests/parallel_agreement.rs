//! Parallel/serial agreement for the morsel-driven executor (E17).
//!
//! The engine's documented contract is *multiset equivalence*: without
//! an ORDER BY, a query's result is a multiset and any row order is
//! permitted, so every comparison here sorts both sides with the
//! null-aware tuple comparator before asserting equality. On top of
//! that, a fixed degree is *deterministic*: morsel results are gathered
//! in task-index order, so running the same statement twice on the same
//! session must produce byte-identical row orders.
//!
//! Coverage:
//! * a fixed statement list exercising every operator the parallel
//!   paths touch (joins, Cartesian products, DISTINCT, EXISTS / NOT
//!   EXISTS / IN subqueries, INTERSECT [ALL], EXCEPT [ALL], UNION);
//! * the labelled corpus generator's statements;
//! * property tests over random database instances and degrees 1–8,
//!   for both static and cost-based parallel sessions.

use proptest::prelude::*;
use uniqueness::engine::Session;
use uniqueness::types::value::tuple_null_cmp;
use uniqueness::types::Value;
use uniqueness::workload::{generate_corpus, random_instance};

/// Statements spanning every operator with a parallel implementation.
/// None carry an ORDER BY, so results are multisets by contract.
fn fixed_statements() -> Vec<&'static str> {
    vec![
        // plain scans and filters
        "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SCITY = 'Toronto'",
        "SELECT ALL P.PNO, P.COLOR FROM PARTS P WHERE P.COLOR = 'RED'",
        // equi-joins and a three-way join
        "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        "SELECT P.PNO, S.SNAME FROM PARTS P, SUPPLIER S \
         WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        "SELECT S.SNO, P.PNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A \
         WHERE S.SNO = P.SNO AND S.SNO = A.SNO",
        // Cartesian product
        "SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A",
        // duplicate elimination
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S",
        "SELECT DISTINCT S.SCITY, P.COLOR FROM SUPPLIER S, PARTS P \
         WHERE S.SNO = P.SNO",
        // correlated and uncorrelated subqueries
        "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
        "SELECT P.PNO FROM PARTS P WHERE P.SNO IN \
         (SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto')",
        // set operations, both DISTINCT and ALL flavours
        "SELECT ALL S.SNO FROM SUPPLIER S \
         INTERSECT SELECT ALL A.SNO FROM AGENTS A",
        "SELECT ALL S.SNO FROM SUPPLIER S \
         INTERSECT ALL SELECT ALL P.SNO FROM PARTS P",
        "SELECT ALL P.SNO FROM PARTS P \
         EXCEPT SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
        "SELECT ALL P.SNO FROM PARTS P \
         EXCEPT ALL SELECT ALL A.SNO FROM AGENTS A",
        "SELECT S.SNO FROM SUPPLIER S \
         UNION SELECT A.SNO FROM AGENTS A",
        "SELECT ALL S.SNO FROM SUPPLIER S \
         UNION ALL SELECT ALL A.SNO FROM AGENTS A",
    ]
}

/// Run `sql` and sort the result with the null-aware tuple comparator,
/// reducing it to a canonical multiset representation.
fn sorted_rows(session: &Session, sql: &str) -> Vec<Vec<Value>> {
    let mut rows = session
        .query(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .rows;
    rows.sort_by(|a, b| tuple_null_cmp(a, b).unwrap());
    rows
}

/// Assert that `parallel` agrees with `serial` on every statement, as
/// multisets.
fn assert_agreement(serial: &Session, parallel: &Session, statements: &[String], label: &str) {
    for sql in statements {
        assert_eq!(
            sorted_rows(parallel, sql),
            sorted_rows(serial, sql),
            "{label}: multiset differs for {sql}"
        );
    }
}

fn corpus_statements(seed: u64) -> Vec<String> {
    generate_corpus(seed, 16, 1)
        .expect("corpus generation")
        .into_iter()
        .map(|q| q.sql)
        .collect()
}

/// CI fast lane: the fixed statement list at a 2-worker degree over the
/// Figure 1 sample database. Deterministic, no proptest machinery.
#[test]
fn fixed_statements_agree_at_degree_2() {
    let serial = Session::sample().unwrap();
    let parallel = serial.clone().with_degree(2);
    let statements: Vec<String> = fixed_statements().into_iter().map(String::from).collect();
    assert_agreement(&serial, &parallel, &statements, "static degree 2");
}

/// CI fast lane: the cost-based planner picks per-operator degrees; the
/// results must still be the serial multisets.
#[test]
fn cost_based_parallel_agrees_at_degree_2() {
    let db = random_instance(99, 40, 80, 40).unwrap();
    let serial = Session::new(db);
    let parallel = serial.clone().with_cost_based().with_degree(2);
    let statements: Vec<String> = fixed_statements().into_iter().map(String::from).collect();
    assert_agreement(&serial, &parallel, &statements, "cost-based degree 2");
}

/// CI fast lane: the generated corpus at a 2-worker degree.
#[test]
fn corpus_statements_agree_at_degree_2() {
    let db = random_instance(7, 30, 60, 30).unwrap();
    let serial = Session::new(db);
    let parallel = serial.clone().with_degree(2);
    assert_agreement(&serial, &parallel, &corpus_statements(7), "corpus degree 2");
}

/// A fixed degree is deterministic: morsel results are gathered in
/// task-index order, so two runs of the same statement on the same
/// session produce identical row *orders*, not merely equal multisets.
#[test]
fn fixed_degree_runs_are_deterministic() {
    let session = Session::sample().unwrap().with_degree(3);
    for sql in fixed_statements() {
        let first = session.query(sql).unwrap().rows;
        let second = session.query(sql).unwrap().rows;
        assert_eq!(first, second, "row order not reproducible for {sql}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random instances × degrees 1–8: the parallel executor returns
    /// the serial multiset for every fixed statement.
    #[test]
    fn parallel_matches_serial_on_random_instances(
        seed in 0u64..1_000,
        degree in 1usize..9,
        suppliers in 5usize..40,
        parts in 5usize..80,
    ) {
        let db = random_instance(seed, suppliers, parts, suppliers).unwrap();
        let serial = Session::new(db);
        let parallel = serial.clone().with_degree(degree);
        for sql in fixed_statements() {
            prop_assert_eq!(
                sorted_rows(&parallel, sql),
                sorted_rows(&serial, sql),
                "degree {} differs for {}", degree, sql
            );
        }
    }

    /// Random instances × degrees 1–8 over the generated corpus, with
    /// the cost-based planner choosing per-operator degrees.
    #[test]
    fn cost_based_parallel_matches_serial_on_corpus(
        seed in 0u64..1_000,
        degree in 1usize..9,
    ) {
        let db = random_instance(seed, 20, 40, 20).unwrap();
        let serial = Session::new(db);
        let parallel = serial.clone().with_cost_based().with_degree(degree);
        for sql in corpus_statements(seed) {
            prop_assert_eq!(
                sorted_rows(&parallel, &sql),
                sorted_rows(&serial, &sql),
                "cost-based degree {} differs for {}", degree, sql
            );
        }
    }
}
