//! Round-trip properties: parse → print → parse is a fixpoint, and
//! bind → unbind → print → parse → bind reproduces the bound query —
//! for the whole randomized corpus, every optimizer output included.

use proptest::prelude::*;
use uniqueness::core::pipeline::{Optimizer, OptimizerOptions};
use uniqueness::core::unbind::unbind_query;
use uniqueness::plan::bind_query;
use uniqueness::sql::parse_query;
use uniqueness::workload::generate_corpus;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// parse ∘ print = id (on ASTs).
    #[test]
    fn parse_print_parse_fixpoint(seed in 0u64..5000) {
        let corpus = generate_corpus(seed, 4, 0).unwrap();
        for q in &corpus {
            let ast1 = parse_query(&q.sql).unwrap();
            let printed = ast1.to_string();
            let ast2 = parse_query(&printed)
                .unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
            prop_assert_eq!(&ast1, &ast2, "{}", printed);
        }
    }

    /// bind ∘ parse ∘ print ∘ unbind = id (on bound queries).
    #[test]
    fn bind_unbind_roundtrip(seed in 0u64..5000) {
        let db = uniqueness::catalog::sample::supplier_schema().unwrap();
        let corpus = generate_corpus(seed.wrapping_add(100_000), 4, 0).unwrap();
        for q in &corpus {
            let b1 = bind_query(db.catalog(), &parse_query(&q.sql).unwrap()).unwrap();
            let printed = unbind_query(&b1).unwrap().to_string();
            let b2 = bind_query(db.catalog(), &parse_query(&printed).unwrap())
                .unwrap_or_else(|e| panic!("rebind failed for {printed}: {e}"));
            prop_assert_eq!(&b1, &b2, "{}", printed);
        }
    }

    /// Every optimizer output is printable and rebinds to exactly the
    /// optimized query (the `sql_after` shown to users is faithful).
    #[test]
    fn optimizer_outputs_are_faithful_sql(seed in 0u64..5000) {
        let db = uniqueness::catalog::sample::supplier_schema().unwrap();
        let corpus = generate_corpus(seed.wrapping_add(200_000), 3, 0).unwrap();
        for opts in [OptimizerOptions::relational(), OptimizerOptions::navigational()] {
            let optimizer = Optimizer::new(opts);
            for q in &corpus {
                let bound = bind_query(db.catalog(), &parse_query(&q.sql).unwrap()).unwrap();
                let outcome = optimizer.optimize(&bound);
                let printed = unbind_query(&outcome.query).unwrap().to_string();
                let rebound = bind_query(db.catalog(), &parse_query(&printed).unwrap())
                    .unwrap_or_else(|e| panic!("rebind {printed}: {e}"));
                prop_assert_eq!(&outcome.query, &rebound, "{}", printed);
            }
        }
    }
}

#[test]
fn paper_queries_roundtrip_through_rewrites() {
    let db = uniqueness::catalog::sample::supplier_schema().unwrap();
    let optimizer = Optimizer::new(OptimizerOptions::relational());
    for sql in [
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' INTERSECT \
         SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
        "SELECT ALL P.OEM-PNO FROM PARTS P INTERSECT \
         SELECT ALL P.OEM-PNO FROM PARTS P WHERE P.COLOR = 'RED'",
    ] {
        let bound = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let outcome = optimizer.optimize(&bound);
        assert!(outcome.changed(), "{sql}");
        for step in &outcome.trace.steps {
            // Each intermediate SQL must parse and bind.
            let reparsed =
                parse_query(&step.sql_after).unwrap_or_else(|e| panic!("{}: {e}", step.sql_after));
            bind_query(db.catalog(), &reparsed)
                .unwrap_or_else(|e| panic!("{}: {e}", step.sql_after));
        }
    }
}
