//! Property tests for the functional-dependency machinery: closure laws,
//! key minimality, and agreement between the closure and a brute-force
//! implication check on small universes.

use proptest::prelude::*;
use uniqueness::fd::{candidate_keys, minimize_key, AttrSet, FdSet};

const ARITY: usize = 6;

fn attr_set() -> impl Strategy<Value = AttrSet> {
    prop::collection::vec(any::<bool>(), ARITY).prop_map(|bits| {
        bits.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    })
}

fn fd_set() -> impl Strategy<Value = FdSet> {
    prop::collection::vec((attr_set(), attr_set()), 0..8).prop_map(|fds| {
        let mut set = FdSet::new(ARITY);
        for (lhs, rhs) in fds {
            set.add_fd(lhs.iter(), rhs.iter());
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// X ⊆ X⁺ (extensivity).
    #[test]
    fn closure_is_extensive(fds in fd_set(), x in attr_set()) {
        prop_assert!(x.is_subset(&fds.closure_of(&x)));
    }

    /// (X⁺)⁺ = X⁺ (idempotence).
    #[test]
    fn closure_is_idempotent(fds in fd_set(), x in attr_set()) {
        let c = fds.closure_of(&x);
        prop_assert_eq!(fds.closure_of(&c), c);
    }

    /// X ⊆ Y ⇒ X⁺ ⊆ Y⁺ (monotonicity).
    #[test]
    fn closure_is_monotone(fds in fd_set(), x in attr_set(), y in attr_set()) {
        let xy = x.clone().union(&y);
        prop_assert!(fds.closure_of(&x).is_subset(&fds.closure_of(&xy)));
    }

    /// Every stored FD is implied by the set.
    #[test]
    fn stored_fds_are_implied(fds in fd_set()) {
        for fd in fds.fds() {
            prop_assert!(fds.implies(&fd.lhs, &fd.rhs));
        }
    }

    /// minimize_key returns a superkey none of whose attributes is
    /// redundant.
    #[test]
    fn minimized_keys_are_minimal_superkeys(fds in fd_set()) {
        let universe = AttrSet::all(ARITY);
        let key = minimize_key(&fds, &universe);
        prop_assert!(fds.is_superkey(&key));
        for a in key.iter() {
            let mut smaller = key.clone();
            smaller.remove(a);
            prop_assert!(
                !fds.is_superkey(&smaller),
                "attribute {a} was redundant in {key:?}"
            );
        }
    }

    /// candidate_keys returns distinct minimal superkeys containing the
    /// greedy one.
    #[test]
    fn candidate_keys_are_minimal_and_distinct(fds in fd_set()) {
        let keys = candidate_keys(&fds, 32);
        prop_assert!(!keys.is_empty());
        for (i, k) in keys.iter().enumerate() {
            prop_assert!(fds.is_superkey(k));
            for a in k.iter() {
                let mut smaller = k.clone();
                smaller.remove(a);
                prop_assert!(!fds.is_superkey(&smaller));
            }
            for other in &keys[i + 1..] {
                prop_assert_ne!(k, other);
            }
        }
    }

    /// The closure agrees with a brute-force fixpoint over subsets on a
    /// tiny universe.
    #[test]
    fn closure_matches_bruteforce(fds in fd_set(), x in attr_set()) {
        // Brute force: repeatedly apply every FD literally.
        let mut brute: Vec<usize> = x.iter().collect();
        loop {
            let before = brute.len();
            for fd in fds.fds() {
                if fd.lhs.iter().all(|a| brute.contains(&a)) {
                    for a in fd.rhs.iter() {
                        if !brute.contains(&a) {
                            brute.push(a);
                        }
                    }
                }
            }
            if brute.len() == before {
                break;
            }
        }
        brute.sort_unstable();
        let closure: Vec<usize> = fds.closure_of(&x).iter().collect();
        prop_assert_eq!(closure, brute);
    }
}
