//! Cross-system equivalence: the three back-ends (relational executor,
//! IMS/DL-I gateway, OODB object store) must return the same suppliers
//! for the paper's Example 10/11 query on the same logical data.
//!
//! This pins the §6 simulators to the relational semantics they claim to
//! implement — the strategies differ only in *cost*, never in result.

use proptest::prelude::*;
use uniqueness::engine::Session;
use uniqueness::ims;
use uniqueness::oodb;
use uniqueness::plan::HostVars;
use uniqueness::types::Value;
use uniqueness::workload::{scaled_database, ScaleConfig};

/// SNOs of suppliers of part `pno`, via the relational engine
/// (Example 10's query, navigational profile exercised too).
fn relational_suppliers(db: &uniqueness::catalog::Database, pno: i64) -> Vec<i64> {
    let mut session = Session::new(db.clone());
    session.optimizer = uniqueness::core::pipeline::OptimizerOptions::navigational();
    let hv = HostVars::new().with("PARTNO", pno);
    let out = session
        .query_with(
            "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
             FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
            &hv,
        )
        .unwrap();
    let mut snos: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    snos.sort_unstable();
    snos
}

/// Same suppliers via the DL/I gateway's two strategies.
fn ims_suppliers(db: &uniqueness::catalog::Database, pno: i64) -> (Vec<i64>, Vec<i64>) {
    let ims_db = ims::sample::from_relational(db).unwrap();
    let join = ims::gateway::join_strategy(&ims_db, "PNO", pno).unwrap();
    let nested = ims::gateway::exists_strategy(&ims_db, "PNO", pno).unwrap();
    let extract = |run: &ims::gateway::GatewayRun| {
        let mut v: Vec<i64> = run.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        v.sort_unstable();
        v.dedup(); // join strategy may emit one row per matching part
        v
    };
    (extract(&join), extract(&nested))
}

/// Same suppliers via the OODB strategies (full SNO range).
fn oodb_suppliers(db: &uniqueness::catalog::Database, pno: i64) -> (Vec<i64>, Vec<i64>) {
    let mut store = oodb::ObjStore::new();
    let classes = oodb::sample::create_supplier_classes(&mut store).unwrap();
    let mut oid_of_sno = std::collections::HashMap::new();
    for s in db.rows(&"SUPPLIER".into()).unwrap() {
        let oid = store
            .insert(
                classes.supplier,
                oodb::Object {
                    fields: s.clone(),
                    parent: None,
                },
            )
            .unwrap();
        oid_of_sno.insert(s[0].clone(), oid);
    }
    for p in db.rows(&"PARTS".into()).unwrap() {
        store
            .insert(
                classes.parts,
                oodb::Object {
                    fields: vec![p[1].clone(), p[2].clone(), p[3].clone(), p[4].clone()],
                    parent: Some(oid_of_sno[&p[0]]),
                },
            )
            .unwrap();
    }
    let lo = 0;
    let hi = i64::MAX;
    let ptr = oodb::pointer_strategy(&store, &classes, pno, lo, hi).unwrap();
    let nst = oodb::nested_strategy(&store, &classes, pno, lo, hi).unwrap();
    let extract = |run: &oodb::StrategyRun| {
        let mut v: Vec<i64> = run.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        v.sort_unstable();
        v
    };
    (extract(&ptr), extract(&nst))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_backends_agree(seed in 0u64..1000, pno in 1i64..8) {
        let cfg = ScaleConfig {
            suppliers: 40,
            parts_per_supplier: 6,
            agents_per_supplier: 1,
            seed,
            ..Default::default()
        };
        let db = scaled_database(&cfg).unwrap();
        let rel = relational_suppliers(&db, pno);
        let (ims_join, ims_nested) = ims_suppliers(&db, pno);
        let (oodb_ptr, oodb_nested) = oodb_suppliers(&db, pno);
        prop_assert_eq!(&rel, &ims_join, "relational vs IMS join");
        prop_assert_eq!(&rel, &ims_nested, "relational vs IMS nested");
        prop_assert_eq!(&rel, &oodb_ptr, "relational vs OODB pointer");
        prop_assert_eq!(&rel, &oodb_nested, "relational vs OODB nested");
    }
}

#[test]
fn sample_database_agrees_across_backends() {
    let db = uniqueness::catalog::sample::supplier_database().unwrap();
    for pno in [10i64, 11, 13, 99] {
        let rel = relational_suppliers(&db, pno);
        let (ims_join, ims_nested) = ims_suppliers(&db, pno);
        let (oodb_ptr, oodb_nested) = oodb_suppliers(&db, pno);
        assert_eq!(rel, ims_join, "pno={pno}");
        assert_eq!(rel, ims_nested, "pno={pno}");
        assert_eq!(rel, oodb_ptr, "pno={pno}");
        assert_eq!(rel, oodb_nested, "pno={pno}");
    }
    // Part 10 specifically: suppliers 1, 2, 3 (paper sample data).
    assert_eq!(relational_suppliers(&db, 10), vec![1, 2, 3]);
}

#[test]
fn ims_duplicate_rows_match_relational_all_semantics() {
    // The IMS *join* strategy emits one row per matching part, exactly
    // like the relational ALL join — check multiplicities, not just sets.
    let db = uniqueness::catalog::sample::supplier_database().unwrap();
    let ims_db = ims::sample::from_relational(&db).unwrap();
    // COLOR = 'RED' as a non-key qualification: supplier 3 has TWO red
    // parts → two join rows.
    let join = ims::gateway::join_strategy(&ims_db, "COLOR", "RED").unwrap();
    let mut counts = std::collections::HashMap::new();
    for r in &join.rows {
        *counts.entry(r[0].as_int().unwrap()).or_insert(0) += 1;
    }
    assert_eq!(counts[&3], 2);
    assert_eq!(counts[&1], 1);
    // And the relational ALL join agrees.
    let session = Session::new(db);
    let out = session
        .query_unoptimized(
            "SELECT ALL S.SNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            &HostVars::new(),
        )
        .unwrap();
    let mut rel_counts = std::collections::HashMap::new();
    for r in &out.rows {
        *rel_counts.entry(r[0].as_int().unwrap()).or_insert(0) += 1;
    }
    assert_eq!(counts, rel_counts);
}

#[test]
fn oodb_null_parent_range_edges() {
    let (store, classes) = oodb::sample::synthetic(10, 3, 42).unwrap();
    // Degenerate range lo > hi: empty from both strategies.
    let ptr = oodb::pointer_strategy(&store, &classes, 42, 5, 4).unwrap();
    let nst = oodb::nested_strategy(&store, &classes, 42, 5, 4).unwrap();
    assert!(ptr.rows.is_empty());
    assert!(nst.rows.is_empty());
    // Probe for a part nobody supplies.
    let ptr = oodb::pointer_strategy(&store, &classes, 9_999, 1, 10).unwrap();
    assert!(ptr.rows.is_empty());
    assert_eq!(ptr.stats.objects_fetched, 0);
}

#[test]
fn value_extraction_helpers() {
    // Guard the Value accessors the extractors above rely on.
    assert_eq!(Value::Int(7).as_int().unwrap(), 7);
    assert!(Value::str("x").as_int().is_err());
}
