//! Property tests for the multiset algebra of §2.2: `INTERSECT [ALL]`,
//! `EXCEPT [ALL]` and duplicate elimination against a naive counting
//! oracle, with `NULL`-bearing tuples throughout (experiment E11).

use proptest::prelude::*;
use std::collections::HashMap;
use uniqueness::catalog::Row;
use uniqueness::engine::setops::{combine_setop, distinct, structural_eq_matches_null_eq};
use uniqueness::engine::stats::{DistinctMethod, ExecStats};
use uniqueness::sql::SetOp;
use uniqueness::types::Value;

/// Tuples over a tiny domain with NULLs, so collisions are common.
fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..4).prop_map(Value::Int),
        prop_oneof![Just("a"), Just("b")].prop_map(Value::str),
    ]
}

fn small_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(small_value(), 2)
}

fn small_rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(small_row(), 0..12)
}

fn counts(rows: &[Row]) -> HashMap<Row, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.clone()).or_insert(0) += 1;
    }
    m
}

/// Naive oracle straight from the SQL2 definitions quoted in §2.2.
fn oracle(op: SetOp, all: bool, left: &[Row], right: &[Row]) -> HashMap<Row, usize> {
    let l = counts(left);
    let r = counts(right);
    let mut out = HashMap::new();
    let keys: Vec<&Row> = l.keys().chain(r.keys()).collect();
    for key in keys {
        let j = l.get(key).copied().unwrap_or(0);
        let k = r.get(key).copied().unwrap_or(0);
        let n = match (op, all) {
            (SetOp::Intersect, true) => j.min(k),
            (SetOp::Intersect, false) => usize::from(j > 0 && k > 0),
            (SetOp::Except, true) => j.saturating_sub(k),
            (SetOp::Except, false) => usize::from(j > 0 && k == 0),
            (SetOp::Union, true) => j + k,
            (SetOp::Union, false) => usize::from(j + k > 0),
        };
        if n > 0 {
            out.insert((*key).clone(), n);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn setops_match_oracle(
        left in small_rows(),
        right in small_rows(),
        all in any::<bool>(),
        op_idx in 0usize..3,
        hash in any::<bool>(),
    ) {
        let op = [SetOp::Intersect, SetOp::Except, SetOp::Union][op_idx];
        let method = if hash { DistinctMethod::Hash } else { DistinctMethod::Sort };
        let mut stats = ExecStats::new();
        let got = combine_setop(op, all, left.clone(), right.clone(), method, &mut stats)
            .unwrap();
        prop_assert_eq!(counts(&got), oracle(op, all, &left, &right),
            "{:?} all={} method={:?}", op, all, method);
    }

    #[test]
    fn distinct_matches_oracle(rows in small_rows(), hash in any::<bool>()) {
        let method = if hash { DistinctMethod::Hash } else { DistinctMethod::Sort };
        let mut stats = ExecStats::new();
        let got = distinct(rows.clone(), method, &mut stats).unwrap();
        // Every equivalence class once.
        let expected: usize = counts(&rows).len();
        prop_assert_eq!(got.len(), expected);
        prop_assert_eq!(counts(&got).len(), expected);
        // Same support.
        let got_counts = counts(&got);
        let row_counts = counts(&rows);
        let got_keys: std::collections::HashSet<_> = got_counts.keys().collect();
        let row_keys: std::collections::HashSet<_> = row_counts.keys().collect();
        prop_assert_eq!(got_keys, row_keys);
    }

    /// The hash paths are correct only because structural equality on
    /// `Value` coincides with `=̇`; pin that invariant.
    #[test]
    fn structural_eq_coincides_with_null_eq(a in small_value(), b in small_value()) {
        prop_assert!(structural_eq_matches_null_eq(&a, &b));
    }

    /// Sorting is deterministic and sorted output is `=̇`-grouped: equal
    /// tuples are adjacent (the property dedup relies on).
    #[test]
    fn sort_groups_equal_tuples(rows in small_rows()) {
        let mut stats = ExecStats::new();
        let sorted = {
            let mut r = rows.clone();
            uniqueness::engine::setops::sort_rows(&mut r, &mut stats);
            r
        };
        // Structural equality coincides with =̇ (pinned above), so
        // grouping is checked with `==`.
        for i in 0..sorted.len() {
            for j in (i + 1)..sorted.len() {
                if sorted[i] == sorted[j] {
                    // Everything between two equal tuples is equal too.
                    for k in i..j {
                        prop_assert!(sorted[i] == sorted[k]);
                    }
                }
            }
        }
    }
}

/// Pinned from a `.proptest-regressions` seed recorded before the
/// vendored proptest shim replaced the registry crate (the shim does not
/// read seed files, so historical failures are kept as plain tests):
/// sort-based dedup once conflated cross-type rows that the comparator
/// placed adjacent. `distinct` must keep them apart.
#[test]
fn distinct_sort_keeps_mixed_type_rows_apart() {
    let rows: Vec<Row> = vec![
        vec![Value::str("a"), Value::Null],
        vec![Value::Int(0), Value::Null],
    ];
    let mut stats = ExecStats::new();
    let got = distinct(rows.clone(), DistinctMethod::Sort, &mut stats).unwrap();
    assert_eq!(got.len(), 2);
    assert_eq!(counts(&got), counts(&rows));
}

#[test]
fn intersect_all_null_min_counting() {
    // {NULL,NULL,NULL} ∩ALL {NULL,NULL} = {NULL,NULL}.
    let l: Vec<Row> = vec![vec![Value::Null]; 3];
    let r: Vec<Row> = vec![vec![Value::Null]; 2];
    let mut stats = ExecStats::new();
    let got = combine_setop(
        SetOp::Intersect,
        true,
        l,
        r,
        DistinctMethod::Sort,
        &mut stats,
    )
    .unwrap();
    assert_eq!(got.len(), 2);
}

#[test]
fn except_all_null_saturation() {
    // {NULL,NULL} −ALL {NULL,NULL,NULL} = ∅.
    let l: Vec<Row> = vec![vec![Value::Null]; 2];
    let r: Vec<Row> = vec![vec![Value::Null]; 3];
    let mut stats = ExecStats::new();
    let got = combine_setop(SetOp::Except, true, l, r, DistinctMethod::Sort, &mut stats).unwrap();
    assert!(got.is_empty());
}
