//! Snapshot-delta extraction properties (the substrate of O(Δ)
//! subscription maintenance, E22).
//!
//! `Database::table_delta` claims that for an *insert-only* pair of
//! snapshots from the same MVCC chain, the newer snapshot's rows are
//! exactly the older snapshot's rows plus a contiguous suffix — and
//! that untouched tables are recognized in O(1) by `Arc` pointer
//! equality, returning an empty delta without comparing a single row.
//! These properties replay extracted deltas over random instances and
//! random write interleavings and demand exact reconstruction of the
//! head snapshot, per table.

use proptest::prelude::*;
use std::sync::Arc;
use uniqueness::catalog::snapshot::SnapshotStore;
use uniqueness::catalog::{Database, Row};
use uniqueness::workload::random_instance;
use uniqueness::workload::rng::SplitMix64;

const TABLES: [&str; 3] = ["SUPPLIER", "PARTS", "AGENTS"];

/// One random insert-only write: a script touching a random non-empty
/// subset of the three tables, with keys drawn outside the instance
/// generator's domains so constraint enforcement never rejects them.
/// Returns the script and which tables it touches.
fn random_write(rng: &mut SplitMix64, round: usize) -> (String, Vec<&'static str>) {
    // Every write may reference supplier 100 + round, inserted first,
    // so PARTS / AGENTS foreign keys always resolve.
    let sno = 100 + round as i64;
    let mut script =
        format!("INSERT INTO SUPPLIER VALUES ({sno}, 'Late', 'Toronto', 1, 'Active');");
    let mut touched = vec!["SUPPLIER"];
    if rng.gen_bool(0.6) {
        // OEM-PNOs 1000+ lie outside both the sample data and the
        // instance generator's 100..=120 pool.
        for p in 0..rng.gen_range(1..4usize) {
            script.push_str(&format!(
                " INSERT INTO PARTS VALUES ({sno}, {p}, 'part9', {}, 'RED');",
                1000 + 10 * round + p
            ));
        }
        touched.push("PARTS");
    }
    if rng.gen_bool(0.4) {
        script.push_str(&format!(
            " INSERT INTO AGENTS VALUES ({sno}, 1, 'agent9', 'Ottawa');"
        ));
        touched.push("AGENTS");
    }
    (script, touched)
}

fn table_rows(db: &Database, table: &str) -> Vec<Row> {
    db.rows(&table.into()).unwrap().to_vec()
}

#[test]
fn delta_replay_reconstructs_head_on_a_fixed_sequence() {
    let store = SnapshotStore::new(random_instance(7, 10, 20, 10).unwrap());
    let base = store.snapshot();
    store
        .run_script("INSERT INTO SUPPLIER VALUES (200, 'Solo', 'Chicago', 2, 'Active');")
        .unwrap();
    let mid = store.snapshot();
    store
        .run_script("INSERT INTO PARTS VALUES (200, 1, 'part9', 2000, 'BLUE');")
        .unwrap();
    let head = store.snapshot();

    // The write that only touched SUPPLIER left PARTS and AGENTS on
    // the *same* storage Arc: the delta is recognized empty in O(1).
    for table in ["PARTS", "AGENTS"] {
        assert!(base.shares_storage(&mid, &table.into()), "{table}");
        assert_eq!(
            base.table_delta(&mid, &table.into()).unwrap(),
            &[] as &[Row]
        );
    }
    assert_eq!(base.table_delta(&mid, &"SUPPLIER".into()).unwrap().len(), 1);
    // Deltas also telescope across non-adjacent insert-only pairs.
    assert_eq!(
        base.table_delta(&head, &"SUPPLIER".into()).unwrap().len(),
        1
    );
    assert_eq!(base.table_delta(&head, &"PARTS".into()).unwrap().len(), 1);
    assert_eq!(
        mid.table_delta(&head, &"AGENTS".into()).unwrap(),
        &[] as &[Row]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Base snapshot + extracted per-table deltas, replayed in chain
    /// order, reconstruct the head snapshot exactly — and tables a
    /// write did not touch are recognized by pointer equality.
    #[test]
    fn base_plus_replayed_deltas_equal_head(
        seed in 0u64..1_000,
        writes in 1usize..8,
    ) {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed);
        let store = SnapshotStore::new(random_instance(seed, 10, 20, 10).unwrap());
        let mut snaps: Vec<Arc<Database>> = vec![store.snapshot()];
        let mut touched_per_write: Vec<Vec<&str>> = Vec::new();
        for round in 0..writes {
            let (script, touched) = random_write(&mut rng, round);
            store.run_script(&script).unwrap();
            snaps.push(store.snapshot());
            touched_per_write.push(touched);
        }

        let base = &snaps[0];
        let head = snaps.last().unwrap();
        for table in TABLES {
            let name = table.into();
            let mut replayed = table_rows(base, table);
            for (i, pair) in snaps.windows(2).enumerate() {
                let (older, newer) = (&pair[0], &pair[1]);
                let delta = older
                    .table_delta(newer, &name)
                    .expect("adjacent insert-only snapshots always have a delta");
                if !touched_per_write[i].contains(&table) {
                    // Untouched table: O(1) pointer-equality fast path.
                    prop_assert!(older.shares_storage(newer, &name));
                    prop_assert!(delta.is_empty());
                }
                replayed.extend(delta.iter().cloned());
            }
            prop_assert_eq!(
                &replayed,
                &table_rows(head, table),
                "replayed deltas diverge from head for {}", table
            );
            // The telescoped base→head delta is the same suffix.
            let direct = base.table_delta(head, &name)
                .expect("insert-only chains telescope");
            prop_assert_eq!(direct, &replayed[table_rows(base, table).len()..]);
        }
    }
}
