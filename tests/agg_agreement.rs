//! Aggregation / Top-K agreement properties.
//!
//! Over random valid instances of the Figure 1 schema and random
//! `GROUP BY` / aggregate / `ORDER BY` / `LIMIT` queries, every
//! execution configuration must produce the same answer:
//!
//! * the **un-elided serial row oracle** (`with_agg_elision(false)`):
//!   hash grouping, distinct sets, and full scan-sort-limit, paid in
//!   full;
//! * the **elided row path** (session defaults): proof-gated `GROUP BY`
//!   key elision, `COUNT(DISTINCT)` degradation, and the early-stopping
//!   ordered-index Top-K walk;
//! * the **cost-based columnar path** at parallel degrees 1–4.
//!
//! Comparisons are multiset comparisons. When a `LIMIT` is generated,
//! the query's `ORDER BY` covers *all* output columns, so the surviving
//! multiset is deterministic and the comparison stays exact; without a
//! `LIMIT` the `ORDER BY` is an arbitrary (possibly empty) subset and
//! row order is ignored. Sortedness of every ordered result is checked
//! against the generated `ORDER BY` spec directly.

use proptest::prelude::*;
use std::collections::HashMap;
use uniqueness::catalog::Row;
use uniqueness::engine::Session;
use uniqueness::workload::random_instance;
use uniqueness::workload::rng::SplitMix64;

/// One table's generation vocabulary: alias, all columns, the columns
/// `SUM`/`AVG` may target (`INTEGER`-typed), and an ordered secondary
/// index created on the elided sessions so the Top-K walk can fire.
struct TableGen {
    name: &'static str,
    alias: &'static str,
    cols: &'static [&'static str],
    int_cols: &'static [&'static str],
    index_col: &'static str,
}

const TABLES: &[TableGen] = &[
    TableGen {
        name: "SUPPLIER",
        alias: "S",
        cols: &["SNO", "SNAME", "SCITY", "BUDGET", "STATUS"],
        int_cols: &["SNO", "BUDGET"],
        index_col: "BUDGET",
    },
    TableGen {
        name: "PARTS",
        alias: "P",
        cols: &["SNO", "PNO", "PNAME", "COLOR"],
        int_cols: &["SNO", "PNO"],
        index_col: "PNAME",
    },
    TableGen {
        name: "AGENTS",
        alias: "A",
        cols: &["SNO", "ANO", "ANAME", "ACITY"],
        int_cols: &["SNO", "ANO"],
        index_col: "ACITY",
    },
];

/// A generated query plus the facts the checker needs: output names
/// and the `ORDER BY` spec as (output position, desc) pairs.
struct GenQuery {
    sql: String,
    order_by: Vec<(usize, bool)>,
    limit: Option<u64>,
}

fn pick<'a, T>(rng: &mut SplitMix64, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// Random single-table aggregate (or plain) query with optional
/// `ORDER BY` / `LIMIT` tail. Every output item carries a distinct
/// alias so `ORDER BY` can address any of them by name.
fn gen_query(rng: &mut SplitMix64) -> GenQuery {
    let t = pick(rng, TABLES);
    let mut items: Vec<String> = Vec::new(); // SELECT-list text
    let mut names: Vec<String> = Vec::new(); // output names, for ORDER BY

    if rng.gen_bool(0.7) {
        // Aggregate query: 0–2 grouping columns, then 1–3 aggregates.
        let ngroup = rng.gen_range(0..=2usize);
        let mut group_cols: Vec<&str> = Vec::new();
        while group_cols.len() < ngroup {
            let c = pick(rng, t.cols);
            if !group_cols.contains(c) {
                group_cols.push(c);
            }
        }
        for c in &group_cols {
            items.push(format!("{}.{}", t.alias, c));
            names.push((*c).to_string());
        }
        let naggs = rng.gen_range(1..=3usize);
        for i in 0..naggs {
            let alias = format!("AG{i}");
            let expr = match rng.gen_range(0..7u32) {
                0 => "COUNT(*)".to_string(),
                1 => format!("COUNT({}.{})", t.alias, pick(rng, t.cols)),
                2 => format!("COUNT(DISTINCT {}.{})", t.alias, pick(rng, t.cols)),
                3 => format!("SUM({}.{})", t.alias, pick(rng, t.int_cols)),
                4 => format!("AVG({}.{})", t.alias, pick(rng, t.int_cols)),
                5 => format!("MIN({}.{})", t.alias, pick(rng, t.cols)),
                _ => format!("MAX({}.{})", t.alias, pick(rng, t.cols)),
            };
            items.push(format!("{expr} AS {alias}"));
            names.push(alias);
        }
        if !group_cols.is_empty() {
            let by: Vec<String> = group_cols
                .iter()
                .map(|c| format!("{}.{}", t.alias, c))
                .collect();
            return finish(
                rng,
                t,
                items,
                names,
                &format!(" GROUP BY {}", by.join(", ")),
            );
        }
        finish(rng, t, items, names, "")
    } else {
        // Plain projection: 1–3 columns, ORDER BY / LIMIT tail only.
        let ncols = rng.gen_range(1..=3usize);
        let mut cols: Vec<&str> = Vec::new();
        while cols.len() < ncols {
            let c = pick(rng, t.cols);
            if !cols.contains(c) {
                cols.push(c);
            }
        }
        for c in &cols {
            items.push(format!("{}.{}", t.alias, c));
            names.push((*c).to_string());
        }
        finish(rng, t, items, names, "")
    }
}

/// Attach the WHERE-free body tail: optional `ORDER BY` (all columns
/// when a `LIMIT` follows, so the cut is deterministic) and `LIMIT`.
fn finish(
    rng: &mut SplitMix64,
    t: &TableGen,
    items: Vec<String>,
    names: Vec<String>,
    group_clause: &str,
) -> GenQuery {
    let mut sql = format!(
        "SELECT {} FROM {} {}{}",
        items.join(", "),
        t.name,
        t.alias,
        group_clause
    );
    let limit = rng.gen_bool(0.5).then(|| rng.gen_range(0..=7i64) as u64);
    let mut order_by: Vec<(usize, bool)> = Vec::new();
    if limit.is_some() || rng.gen_bool(0.6) {
        // A permutation of output positions; all of them under LIMIT.
        let mut positions: Vec<usize> = (0..names.len()).collect();
        for i in (1..positions.len()).rev() {
            positions.swap(i, rng.gen_range(0..=(i as i64)) as usize);
        }
        let keep = if limit.is_some() {
            positions.len()
        } else {
            rng.gen_range(1..=(positions.len() as i64)) as usize
        };
        for &p in &positions[..keep] {
            order_by.push((p, rng.gen_bool(0.4)));
        }
    }
    if !order_by.is_empty() {
        let spec: Vec<String> = order_by
            .iter()
            .map(|(p, desc)| format!("{}{}", names[*p], if *desc { " DESC" } else { "" }))
            .collect();
        sql.push_str(&format!(" ORDER BY {}", spec.join(", ")));
    }
    if let Some(k) = limit {
        sql.push_str(&format!(" LIMIT {k}"));
    }
    GenQuery {
        sql,
        order_by,
        limit,
    }
}

fn multiset(rows: &[Row]) -> HashMap<Row, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.clone()).or_insert(0) += 1;
    }
    m
}

/// Check the rows obey the generated `ORDER BY` spec (engine total
/// order: `NULL` first, via [`Value::null_cmp`]).
fn assert_sorted(rows: &[Row], order_by: &[(usize, bool)], sql: &str) {
    for w in rows.windows(2) {
        for &(p, desc) in order_by {
            let o = w[0][p].null_cmp(&w[1][p]).unwrap();
            let o = if desc { o.reverse() } else { o };
            assert!(o.is_le(), "unsorted at column {p} of {sql}: {w:?}");
            if o.is_lt() {
                break;
            }
        }
    }
}

/// Every session variant that must agree with the oracle, over one
/// shared random instance. Ordered secondary indexes are created so
/// the early-stop license can fire on the elided sessions.
fn sessions(seed: u64) -> (Session, Vec<(&'static str, Session)>) {
    let db = random_instance(seed, 12, 24, 12).unwrap();
    let index_ddl: String = TABLES
        .iter()
        .map(|t| format!("CREATE INDEX IX_{0}_{1} ON {0} ({1});", t.name, t.index_col))
        .collect();
    let mut oracle = Session::new(db.clone()).with_agg_elision(false);
    oracle.run_script(&index_ddl).unwrap();
    let mut variants = vec![
        ("row-elided", Session::new(db.clone())),
        ("row-cost-based", Session::new(db.clone()).with_cost_based()),
        ("row-parallel-3", Session::new(db.clone()).with_degree(3)),
    ];
    for deg in 1..=4usize {
        let s = Session::new(db.clone()).with_degree(deg).with_columnar();
        variants.push(("columnar", s));
    }
    for (_, s) in variants.iter_mut() {
        s.run_script(&index_ddl).unwrap();
        // CREATE INDEX bumps the catalog; refresh cost-based statistics.
        if s.statistics().is_some() {
            s.analyze();
        }
    }
    (oracle, variants)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Elided and un-elided plans agree on every execution path.
    #[test]
    fn all_paths_agree_on_random_aggregate_queries(seed in 0u64..1u64 << 48) {
        let (oracle, variants) = sessions(seed);
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xA55A);
        for _ in 0..6 {
            let q = gen_query(&mut rng);
            let base = oracle
                .query(&q.sql)
                .unwrap_or_else(|e| panic!("oracle failed on {}: {e}", q.sql));
            assert_sorted(&base.rows, &q.order_by, &q.sql);
            if let Some(k) = q.limit {
                assert!(base.rows.len() as u64 <= k, "{}", q.sql);
            }
            let want = multiset(&base.rows);
            for (tag, s) in &variants {
                let got = s
                    .query(&q.sql)
                    .unwrap_or_else(|e| panic!("{tag} failed on {}: {e}", q.sql));
                assert_eq!(
                    multiset(&got.rows),
                    want,
                    "{tag} disagrees with the oracle on {}",
                    q.sql
                );
                assert_sorted(&got.rows, &q.order_by, &q.sql);
            }
        }
    }

    /// The elisions only ever remove work: on every generated query the
    /// elided session's hash + sort effort is bounded by the oracle's.
    #[test]
    fn elision_never_adds_work(seed in 0u64..1u64 << 48) {
        let (oracle, mut variants) = sessions(seed);
        let elided = variants.remove(0).1; // the "row-elided" variant
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5AA5);
        for _ in 0..4 {
            let q = gen_query(&mut rng);
            let base = oracle.query(&q.sql).unwrap();
            let fast = elided.query(&q.sql).unwrap();
            assert!(
                fast.stats.hash_probes <= base.stats.hash_probes,
                "elision added hash work on {}: {} > {}",
                q.sql,
                fast.stats.hash_probes,
                base.stats.hash_probes
            );
            assert!(
                fast.stats.sort_comparisons <= base.stats.sort_comparisons,
                "elision added sort work on {}: {} > {}",
                q.sql,
                fast.stats.sort_comparisons,
                base.stats.sort_comparisons
            );
        }
    }
}
