//! Reproducing Theorem 1 itself: on finite domains, the paper's
//! condition (4) holds **iff** no valid instance can produce duplicate
//! rows. This is the paper's central claim, property-tested over
//! randomized small schemas and predicates — plus the chain
//! `sufficient test YES ⇒ exact condition holds ⇒ no duplicates`.

use proptest::prelude::*;
use uniqueness::core::algorithm1::{algorithm1, Algorithm1Options};
use uniqueness::core::analysis::unique_projection;
use uniqueness::core::theorem1::{condition_holds, duplicates_possible, Domains};
use uniqueness::plan::{bind_query, BoundSpec};
use uniqueness::sql::parse_query;
use uniqueness::types::Value;

/// Tiny two-table schema: R(K, A, B) key K; S(J, C) key J.
fn setup(sql: &str) -> BoundSpec {
    let mut db = uniqueness::catalog::Database::new();
    db.run_script(
        "CREATE TABLE R (K INTEGER, A INTEGER, B INTEGER, PRIMARY KEY (K));
         CREATE TABLE S (J INTEGER, C INTEGER, PRIMARY KEY (J));",
    )
    .unwrap();
    bind_query(db.catalog(), &parse_query(sql).unwrap())
        .unwrap()
        .as_spec()
        .unwrap()
        .clone()
}

fn domains_for(spec: &BoundSpec) -> Domains {
    spec.from
        .iter()
        .map(|t| {
            (0..t.schema.arity())
                .map(|_| vec![Value::Int(1), Value::Int(2)])
                .collect()
        })
        .collect()
}

/// Build a random SPJ query over R (and sometimes S).
fn random_sql() -> impl Strategy<Value = String> {
    let col = prop_oneof![
        Just("R.K"),
        Just("R.A"),
        Just("R.B"),
        Just("S.J"),
        Just("S.C")
    ];
    let r_col = prop_oneof![Just("R.K"), Just("R.A"), Just("R.B")];
    let atom = prop_oneof![
        (col.clone(), 1i64..3).prop_map(|(c, v)| format!("{c} = {v}")),
        (col.clone(), col.clone()).prop_map(|(a, b)| format!("{a} = {b}")),
        (col.clone(), 1i64..3).prop_map(|(c, v)| format!("{c} <> {v}")),
        (col.clone(), col.clone()).prop_map(|(a, b)| format!("({a} = 1 OR {b} = 2)")),
    ];
    let r_atom = prop_oneof![
        (r_col.clone(), 1i64..3).prop_map(|(c, v)| format!("{c} = {v}")),
        (r_col.clone(), r_col.clone()).prop_map(|(a, b)| format!("{a} = {b}")),
    ];
    let two_tables = any::<bool>();
    (
        two_tables,
        prop::collection::vec(atom, 0..3),
        prop::collection::vec(r_atom, 0..2),
        prop::sample::subsequence(vec!["R.K", "R.A", "R.B"], 1..3),
        prop::sample::subsequence(vec!["S.J", "S.C"], 1..2),
    )
        .prop_map(|(two, atoms, r_atoms, r_proj, s_proj)| {
            if two {
                let mut proj: Vec<&str> = r_proj;
                proj.extend(s_proj);
                let mut pred: Vec<String> = atoms;
                pred.extend(r_atoms);
                let where_clause = if pred.is_empty() {
                    String::new()
                } else {
                    format!(" WHERE {}", pred.join(" AND "))
                };
                format!(
                    "SELECT DISTINCT {} FROM R, S{}",
                    proj.join(", "),
                    where_clause
                )
            } else {
                let where_clause = if r_atoms.is_empty() {
                    String::new()
                } else {
                    format!(" WHERE {}", r_atoms.join(" AND "))
                };
                format!(
                    "SELECT DISTINCT {} FROM R{}",
                    r_proj.join(", "),
                    where_clause
                )
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: condition (4) ⟺ no duplicates on any valid instance.
    #[test]
    fn condition_iff_no_duplicates(sql in random_sql()) {
        let spec = setup(&sql);
        let domains = domains_for(&spec);
        let cond = condition_holds(&spec, &domains, &vec![]).unwrap();
        let dups = duplicates_possible(&spec, &domains, &vec![]).unwrap();
        prop_assert_eq!(cond, !dups, "Theorem 1 equivalence failed for {}", sql);
    }

    /// Soundness chain: the practical sufficient tests never answer YES
    /// when the exact condition fails.
    #[test]
    fn sufficient_tests_imply_exact_condition(sql in random_sql()) {
        let spec = setup(&sql);
        let domains = domains_for(&spec);
        let cond = condition_holds(&spec, &domains, &vec![]).unwrap();
        let alg1 = algorithm1(&spec, &Algorithm1Options::default()).unique;
        let fd = unique_projection(&spec).unique;
        if alg1 || fd {
            prop_assert!(
                cond,
                "sufficient test YES but exact condition fails for {} (alg1={}, fd={})",
                sql, alg1, fd
            );
        }
    }
}

/// The paper's own Example 4 condition (host variable included) is
/// satisfiable — the worked expression in §3.2 — checked exactly.
#[test]
fn example_4_condition_holds_exactly() {
    // Miniature PARTS/SUPPLIER with the same key structure.
    let mut db = uniqueness::catalog::Database::new();
    db.run_script(
        "CREATE TABLE SUP (SNO INTEGER, SNAME INTEGER, PRIMARY KEY (SNO));
         CREATE TABLE PAR (SNO INTEGER, PNO INTEGER, PNAME INTEGER, \
          PRIMARY KEY (SNO, PNO));",
    )
    .unwrap();
    let bound = bind_query(
        db.catalog(),
        &parse_query(
            "SELECT DISTINCT SUP.SNO, SUP.SNAME, PAR.PNO, PAR.PNAME \
             FROM SUP, PAR WHERE PAR.SNO = :SUPPLIER-NO AND SUP.SNO = PAR.SNO",
        )
        .unwrap(),
    )
    .unwrap();
    let spec = bound.as_spec().unwrap();
    let d2 = vec![Value::Int(1), Value::Int(2)];
    let domains = vec![
        vec![d2.clone(), d2.clone()],
        vec![d2.clone(), d2.clone(), d2.clone()],
    ];
    let hosts = vec![("SUPPLIER-NO".into(), d2)];
    assert!(condition_holds(spec, &domains, &hosts).unwrap());
    assert!(!duplicates_possible(spec, &domains, &hosts).unwrap());
    // Dropping the host-variable restriction breaks uniqueness.
    let bound2 = bind_query(
        db.catalog(),
        &parse_query(
            "SELECT DISTINCT SUP.SNAME, PAR.PNAME FROM SUP, PAR \
             WHERE SUP.SNO = PAR.SNO",
        )
        .unwrap(),
    )
    .unwrap();
    let spec2 = bound2.as_spec().unwrap();
    let d2 = vec![Value::Int(1), Value::Int(2)];
    let domains2 = vec![
        vec![d2.clone(), d2.clone()],
        vec![d2.clone(), d2.clone(), d2],
    ];
    assert!(!condition_holds(spec2, &domains2, &vec![]).unwrap());
    assert!(duplicates_possible(spec2, &domains2, &vec![]).unwrap());
}
