//! Columnar/row agreement for the vectorized executor (E18).
//!
//! The row executor is the oracle: for every statement, the columnar
//! session must return the oracle's multiset (no ORDER BY appears here,
//! so row order is unconstrained by contract and both sides are sorted
//! with the null-aware tuple comparator before comparison).
//!
//! Coverage:
//! * a fixed *covered* statement list with at least one case per
//!   vectorized kernel — filter (int and string ranges, NULL literal),
//!   projection, hash and unique joins (two- and three-way), DISTINCT,
//!   INTERSECT, EXCEPT;
//! * a fixed *fallback* list of shapes the planner must refuse to
//!   license (OR, BETWEEN, subqueries, Cartesian products, same-table
//!   comparisons), which must run on the row path and still agree;
//! * property tests over random database instances × degrees 1–4.

use proptest::prelude::*;
use uniqueness::engine::Session;
use uniqueness::types::value::tuple_null_cmp;
use uniqueness::types::Value;
use uniqueness::workload::columnar_session_pair;

/// Statements the planner licenses for columnar execution, with at
/// least one per kernel: filter, project, join, DISTINCT, set ops.
fn covered_statements() -> Vec<&'static str> {
    vec![
        // filter kernels: int ranges, string equality and ranges, a
        // nullable column, and a NULL literal (the empty code range)
        "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SCITY = 'Toronto'",
        "SELECT P.PNO, P.COLOR FROM PARTS P WHERE P.PNO > 2",
        "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY >= 'New York'",
        "SELECT P.PNO FROM PARTS P WHERE P.COLOR <> 'GREEN' AND P.PNO <= 4",
        "SELECT S.SNO FROM SUPPLIER S WHERE S.BUDGET > 2",
        "SELECT S.SNO FROM SUPPLIER S WHERE S.SNAME = NULL",
        // projection with late materialization
        "SELECT P.PNAME, P.COLOR FROM PARTS P WHERE P.SNO = 1",
        // hash and direct-index unique joins, two- and three-way
        "SELECT P.PNO, S.SCITY FROM PARTS P, SUPPLIER S WHERE P.SNO = S.SNO",
        "SELECT P.PNO, S.SCITY FROM PARTS P, SUPPLIER S \
         WHERE P.SNO = S.SNO AND P.COLOR = 'RED'",
        "SELECT S.SNO, P.PNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A \
         WHERE S.SNO = P.SNO AND S.SNO = A.SNO",
        // DISTINCT kernel, single- and multi-table
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S",
        "SELECT DISTINCT P.COLOR, S.SCITY FROM PARTS P, SUPPLIER S \
         WHERE P.SNO = S.SNO",
        // INTERSECT evaluates each block through the kernels
        "SELECT ALL S.SNO FROM SUPPLIER S \
         INTERSECT SELECT ALL A.SNO FROM AGENTS A",
    ]
}

/// Shapes the planner must *not* license: they exercise the documented
/// fallback to the row executor, which remains the oracle.
fn fallback_statements() -> Vec<&'static str> {
    vec![
        "SELECT P.PNO FROM PARTS P WHERE P.COLOR = 'RED' OR P.PNO = 1",
        "SELECT P.PNO FROM PARTS P WHERE P.PNO BETWEEN 1 AND 3",
        "SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A",
        "SELECT P.PNO FROM PARTS P WHERE P.PNO = P.SNO",
    ]
}

/// Shapes whose path depends on what the optimizer rewrites them into
/// (an EXISTS may become a licensed join; an EXCEPT stays on rows):
/// agreement is the contract, the path is the optimizer's choice.
fn rewrite_dependent_statements() -> Vec<&'static str> {
    vec![
        "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
        "SELECT P.PNO FROM PARTS P WHERE P.SNO IN \
         (SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto')",
        "SELECT ALL P.SNO FROM PARTS P \
         EXCEPT SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
    ]
}

/// Run `sql` and sort the result into a canonical multiset.
fn sorted_rows(session: &Session, sql: &str) -> Vec<Vec<Value>> {
    let mut rows = session
        .query(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .rows;
    rows.sort_by(|a, b| tuple_null_cmp(a, b).unwrap());
    rows
}

fn assert_agreement(oracle: &Session, columnar: &Session, statements: &[&str], label: &str) {
    for sql in statements {
        assert_eq!(
            sorted_rows(columnar, sql),
            sorted_rows(oracle, sql),
            "{label}: multiset differs for {sql}"
        );
    }
}

/// CI fast lane: every covered statement agrees with the oracle AND
/// actually runs through the vectorized kernels (vector_ops > 0), so a
/// silent fallback cannot masquerade as kernel coverage.
#[test]
fn covered_statements_agree_and_use_the_kernels() {
    let (oracle, columnar) = columnar_session_pair(42, 30, 60, 30, 1).unwrap();
    for sql in covered_statements() {
        assert_eq!(
            sorted_rows(&columnar, sql),
            sorted_rows(&oracle, sql),
            "covered: multiset differs for {sql}"
        );
        let out = columnar.query(sql).unwrap();
        assert!(out.stats.vector_ops > 0, "row-path fallback for {sql}");
        assert_eq!(out.stats.rows_scanned, 0, "row scan leaked into {sql}");
    }
}

/// CI fast lane: unlicensed shapes stay on the row path and agree.
#[test]
fn fallback_statements_agree_on_the_row_path() {
    let (oracle, columnar) = columnar_session_pair(42, 30, 60, 30, 1).unwrap();
    for sql in fallback_statements() {
        assert_eq!(
            sorted_rows(&columnar, sql),
            sorted_rows(&oracle, sql),
            "fallback: multiset differs for {sql}"
        );
        let out = columnar.query(sql).unwrap();
        assert_eq!(out.stats.vector_ops, 0, "kernels ran for fallback {sql}");
    }
    assert_agreement(
        &oracle,
        &columnar,
        &rewrite_dependent_statements(),
        "rewrite-dependent",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random instances × degrees 1–4: the columnar session returns the
    /// row oracle's multiset for every covered and fallback statement.
    #[test]
    fn columnar_matches_row_oracle_on_random_instances(
        seed in 0u64..1_000,
        degree in 1usize..5,
        suppliers in 5usize..40,
        parts in 5usize..80,
    ) {
        let (oracle, columnar) =
            columnar_session_pair(seed, suppliers, parts, suppliers, degree).unwrap();
        let statements: Vec<&str> = covered_statements()
            .into_iter()
            .chain(fallback_statements())
            .chain(rewrite_dependent_statements())
            .collect();
        for sql in &statements {
            prop_assert_eq!(
                sorted_rows(&columnar, sql),
                sorted_rows(&oracle, sql),
                "degree {} differs for {}", degree, sql
            );
        }
    }

    /// Mutation after analyze: an INSERT makes the column store stale,
    /// so covered statements must transparently fall back to the row
    /// path — and still agree with an oracle that sees the new row.
    #[test]
    fn stale_store_falls_back_and_still_agrees(
        seed in 0u64..1_000,
        degree in 1usize..5,
    ) {
        let (mut oracle, mut columnar) = columnar_session_pair(seed, 20, 40, 20, degree).unwrap();
        // SNO 21 lies outside the generator's 1..=20 domain, so the
        // insert can never clash with an existing candidate-key value.
        let insert = "INSERT INTO SUPPLIER VALUES (21, 'Late', 'Toronto', 3, 'Active');";
        oracle.run_script(insert).unwrap();
        columnar.run_script(insert).unwrap();
        for sql in covered_statements() {
            prop_assert_eq!(
                sorted_rows(&columnar, sql),
                sorted_rows(&oracle, sql),
                "stale store differs for {}", sql
            );
            // Staleness is detected per table: only blocks that touch
            // the mutated SUPPLIER table must abandon the kernels.
            if sql.contains("SUPPLIER") {
                let out = columnar.query(sql).unwrap();
                prop_assert_eq!(out.stats.vector_ops, 0, "stale store still vectorized {}", sql);
            }
        }
    }
}
