//! Normalization must preserve three-valued semantics: NNF, CNF and the
//! CNF → DNF expansion all evaluate identically to the original
//! predicate on every tuple (NULLs included).

use proptest::prelude::*;
use uniqueness::core::theorem1::eval_predicate;
use uniqueness::plan::norm::{cnf_to_dnf, to_cnf, to_nnf};
use uniqueness::plan::{AttrRef, BScalar, BoundExpr, HostVars};
use uniqueness::sql::CmpOp;
use uniqueness::types::{Tri, Value};

const ARITY: usize = 3;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::Null), (0i64..3).prop_map(Value::Int),]
}

fn scalar() -> impl Strategy<Value = BScalar> {
    prop_oneof![
        (0usize..ARITY).prop_map(|i| BScalar::Attr(AttrRef::local(i))),
        (0i64..3).prop_map(|v| BScalar::Literal(Value::Int(v))),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Ge),
    ]
}

fn expr() -> impl Strategy<Value = BoundExpr> {
    let leaf = prop_oneof![
        (cmp_op(), scalar(), scalar()).prop_map(|(op, left, right)| BoundExpr::Cmp {
            op,
            left,
            right
        }),
        (scalar(), any::<bool>()).prop_map(|(s, negated)| BoundExpr::IsNull { scalar: s, negated }),
        (scalar(), scalar(), scalar(), any::<bool>()).prop_map(|(s, low, high, negated)| {
            BoundExpr::Between {
                scalar: s,
                low,
                high,
                negated,
            }
        }),
        (
            scalar(),
            prop::collection::vec(scalar(), 1..3),
            any::<bool>()
        )
            .prop_map(|(s, list, negated)| BoundExpr::InList {
                scalar: s,
                list,
                negated
            }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BoundExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BoundExpr::or(a, b)),
            inner.prop_map(BoundExpr::not),
        ]
    })
}

fn tuple() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(value(), ARITY)
}

fn eval_cnf(cnf: &[Vec<BoundExpr>], t: &[Value], hv: &HostVars) -> Tri {
    let mut conj = Tri::True;
    for clause in cnf {
        let mut disj = Tri::False;
        for atom in clause {
            disj = disj.or(eval_predicate(atom, t, hv).unwrap());
        }
        conj = conj.and(disj);
    }
    conj
}

fn eval_dnf(dnf: &[Vec<BoundExpr>], t: &[Value], hv: &HostVars) -> Tri {
    let mut disj = Tri::False;
    for conjunct in dnf {
        let mut conj = Tri::True;
        for atom in conjunct {
            conj = conj.and(eval_predicate(atom, t, hv).unwrap());
        }
        disj = disj.or(conj);
    }
    disj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn nnf_preserves_three_valued_semantics(e in expr(), t in tuple()) {
        let hv = HostVars::new();
        let original = eval_predicate(&e, &t, &hv).unwrap();
        let nnf = to_nnf(&e);
        prop_assert_eq!(
            eval_predicate(&nnf, &t, &hv).unwrap(),
            original,
            "NNF changed semantics of {:?}",
            e
        );
    }

    #[test]
    fn cnf_preserves_three_valued_semantics(e in expr(), t in tuple()) {
        let hv = HostVars::new();
        let original = eval_predicate(&e, &t, &hv).unwrap();
        if let Some(cnf) = to_cnf(&e, 512) {
            prop_assert_eq!(eval_cnf(&cnf, &t, &hv), original, "CNF of {:?}", e);
            if let Some(dnf) = cnf_to_dnf(&cnf, 512) {
                prop_assert_eq!(eval_dnf(&dnf, &t, &hv), original, "DNF of {:?}", e);
            }
        }
    }

    /// Double application of NNF is a fixpoint (no `Not` remains).
    #[test]
    fn nnf_is_a_fixpoint(e in expr()) {
        let once = to_nnf(&e);
        prop_assert_eq!(to_nnf(&once), once.clone());
        fn no_not(e: &BoundExpr) -> bool {
            match e {
                BoundExpr::Not(_) => false,
                BoundExpr::And(a, b) | BoundExpr::Or(a, b) => no_not(a) && no_not(b),
                _ => true,
            }
        }
        prop_assert!(no_not(&once));
    }
}
