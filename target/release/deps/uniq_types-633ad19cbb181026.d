/root/repo/target/release/deps/uniq_types-633ad19cbb181026.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

/root/repo/target/release/deps/libuniq_types-633ad19cbb181026.rlib: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

/root/repo/target/release/deps/libuniq_types-633ad19cbb181026.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/hash.rs:
crates/types/src/ident.rs:
crates/types/src/tri.rs:
crates/types/src/value.rs:
