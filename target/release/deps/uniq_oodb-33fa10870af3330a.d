/root/repo/target/release/deps/uniq_oodb-33fa10870af3330a.d: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

/root/repo/target/release/deps/libuniq_oodb-33fa10870af3330a.rlib: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

/root/repo/target/release/deps/libuniq_oodb-33fa10870af3330a.rmeta: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

crates/oodb/src/lib.rs:
crates/oodb/src/sample.rs:
crates/oodb/src/store.rs:
crates/oodb/src/strategies.rs:
