/root/repo/target/release/deps/uniq_core-3d7825726f9b08fd.d: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/analysis.rs crates/core/src/pipeline.rs crates/core/src/rewrite/mod.rs crates/core/src/rewrite/distinct.rs crates/core/src/rewrite/join_elim.rs crates/core/src/rewrite/setops.rs crates/core/src/rewrite/subquery.rs crates/core/src/rewrite/util.rs crates/core/src/rules.rs crates/core/src/theorem1.rs crates/core/src/unbind.rs

/root/repo/target/release/deps/libuniq_core-3d7825726f9b08fd.rlib: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/analysis.rs crates/core/src/pipeline.rs crates/core/src/rewrite/mod.rs crates/core/src/rewrite/distinct.rs crates/core/src/rewrite/join_elim.rs crates/core/src/rewrite/setops.rs crates/core/src/rewrite/subquery.rs crates/core/src/rewrite/util.rs crates/core/src/rules.rs crates/core/src/theorem1.rs crates/core/src/unbind.rs

/root/repo/target/release/deps/libuniq_core-3d7825726f9b08fd.rmeta: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/analysis.rs crates/core/src/pipeline.rs crates/core/src/rewrite/mod.rs crates/core/src/rewrite/distinct.rs crates/core/src/rewrite/join_elim.rs crates/core/src/rewrite/setops.rs crates/core/src/rewrite/subquery.rs crates/core/src/rewrite/util.rs crates/core/src/rules.rs crates/core/src/theorem1.rs crates/core/src/unbind.rs

crates/core/src/lib.rs:
crates/core/src/algorithm1.rs:
crates/core/src/analysis.rs:
crates/core/src/pipeline.rs:
crates/core/src/rewrite/mod.rs:
crates/core/src/rewrite/distinct.rs:
crates/core/src/rewrite/join_elim.rs:
crates/core/src/rewrite/setops.rs:
crates/core/src/rewrite/subquery.rs:
crates/core/src/rewrite/util.rs:
crates/core/src/rules.rs:
crates/core/src/theorem1.rs:
crates/core/src/unbind.rs:
