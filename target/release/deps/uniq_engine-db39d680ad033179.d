/root/repo/target/release/deps/uniq_engine-db39d680ad033179.d: crates/engine/src/lib.rs crates/engine/src/exec.rs crates/engine/src/explain.rs crates/engine/src/plancache.rs crates/engine/src/session.rs crates/engine/src/setops.rs crates/engine/src/stats.rs

/root/repo/target/release/deps/libuniq_engine-db39d680ad033179.rlib: crates/engine/src/lib.rs crates/engine/src/exec.rs crates/engine/src/explain.rs crates/engine/src/plancache.rs crates/engine/src/session.rs crates/engine/src/setops.rs crates/engine/src/stats.rs

/root/repo/target/release/deps/libuniq_engine-db39d680ad033179.rmeta: crates/engine/src/lib.rs crates/engine/src/exec.rs crates/engine/src/explain.rs crates/engine/src/plancache.rs crates/engine/src/session.rs crates/engine/src/setops.rs crates/engine/src/stats.rs

crates/engine/src/lib.rs:
crates/engine/src/exec.rs:
crates/engine/src/explain.rs:
crates/engine/src/plancache.rs:
crates/engine/src/session.rs:
crates/engine/src/setops.rs:
crates/engine/src/stats.rs:
