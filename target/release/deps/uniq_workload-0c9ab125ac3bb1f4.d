/root/repo/target/release/deps/uniq_workload-0c9ab125ac3bb1f4.d: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

/root/repo/target/release/deps/libuniq_workload-0c9ab125ac3bb1f4.rlib: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

/root/repo/target/release/deps/libuniq_workload-0c9ab125ac3bb1f4.rmeta: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

crates/workload/src/lib.rs:
crates/workload/src/corpus.rs:
crates/workload/src/driver.rs:
crates/workload/src/gen.rs:
crates/workload/src/instance.rs:
crates/workload/src/rng.rs:
