/root/repo/target/release/deps/uniq_plan-50ffbeb3e3a38335.d: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

/root/repo/target/release/deps/libuniq_plan-50ffbeb3e3a38335.rlib: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

/root/repo/target/release/deps/libuniq_plan-50ffbeb3e3a38335.rmeta: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

crates/plan/src/lib.rs:
crates/plan/src/binder.rs:
crates/plan/src/bound.rs:
crates/plan/src/hostvars.rs:
crates/plan/src/norm.rs:
