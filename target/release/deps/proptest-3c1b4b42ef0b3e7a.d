/root/repo/target/release/deps/proptest-3c1b4b42ef0b3e7a.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/sample.rs

/root/repo/target/release/deps/libproptest-3c1b4b42ef0b3e7a.rlib: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/sample.rs

/root/repo/target/release/deps/libproptest-3c1b4b42ef0b3e7a.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/sample.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/sample.rs:
