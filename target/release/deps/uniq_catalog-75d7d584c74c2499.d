/root/repo/target/release/deps/uniq_catalog-75d7d584c74c2499.d: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

/root/repo/target/release/deps/libuniq_catalog-75d7d584c74c2499.rlib: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

/root/repo/target/release/deps/libuniq_catalog-75d7d584c74c2499.rmeta: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

crates/catalog/src/lib.rs:
crates/catalog/src/catalog.rs:
crates/catalog/src/database.rs:
crates/catalog/src/sample.rs:
crates/catalog/src/table.rs:
crates/catalog/src/validate.rs:
