/root/repo/target/release/deps/uniqueness-3eaa3b3e79d2c3a7.d: crates/uniq/src/lib.rs

/root/repo/target/release/deps/libuniqueness-3eaa3b3e79d2c3a7.rlib: crates/uniq/src/lib.rs

/root/repo/target/release/deps/libuniqueness-3eaa3b3e79d2c3a7.rmeta: crates/uniq/src/lib.rs

crates/uniq/src/lib.rs:
