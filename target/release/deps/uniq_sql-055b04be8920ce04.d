/root/repo/target/release/deps/uniq_sql-055b04be8920ce04.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

/root/repo/target/release/deps/libuniq_sql-055b04be8920ce04.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

/root/repo/target/release/deps/libuniq_sql-055b04be8920ce04.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
crates/sql/src/printer.rs:
