/root/repo/target/release/deps/uniq_bench-c773f7b65cedb656.d: crates/bench/src/lib.rs crates/bench/src/baseline.rs

/root/repo/target/release/deps/libuniq_bench-c773f7b65cedb656.rlib: crates/bench/src/lib.rs crates/bench/src/baseline.rs

/root/repo/target/release/deps/libuniq_bench-c773f7b65cedb656.rmeta: crates/bench/src/lib.rs crates/bench/src/baseline.rs

crates/bench/src/lib.rs:
crates/bench/src/baseline.rs:
