/root/repo/target/release/deps/uniq_ims-8291d76d73dc2dc2.d: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

/root/repo/target/release/deps/libuniq_ims-8291d76d73dc2dc2.rlib: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

/root/repo/target/release/deps/libuniq_ims-8291d76d73dc2dc2.rmeta: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

crates/ims/src/lib.rs:
crates/ims/src/dli.rs:
crates/ims/src/gateway.rs:
crates/ims/src/hierarchy.rs:
crates/ims/src/sample.rs:
