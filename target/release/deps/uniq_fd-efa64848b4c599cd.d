/root/repo/target/release/deps/uniq_fd-efa64848b4c599cd.d: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

/root/repo/target/release/deps/libuniq_fd-efa64848b4c599cd.rlib: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

/root/repo/target/release/deps/libuniq_fd-efa64848b4c599cd.rmeta: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

crates/fd/src/lib.rs:
crates/fd/src/attrset.rs:
crates/fd/src/fdset.rs:
crates/fd/src/keys.rs:
