/root/repo/target/release/deps/report-dda1712347353386.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-dda1712347353386: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
