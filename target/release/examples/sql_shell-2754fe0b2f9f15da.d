/root/repo/target/release/examples/sql_shell-2754fe0b2f9f15da.d: crates/uniq/../../examples/sql_shell.rs

/root/repo/target/release/examples/sql_shell-2754fe0b2f9f15da: crates/uniq/../../examples/sql_shell.rs

crates/uniq/../../examples/sql_shell.rs:
