/root/repo/target/release/libuniq_fd.rlib: /root/repo/crates/fd/src/attrset.rs /root/repo/crates/fd/src/fdset.rs /root/repo/crates/fd/src/keys.rs /root/repo/crates/fd/src/lib.rs
