/root/repo/target/debug/deps/analysis_soundness-4ad8561ee02a6781.d: crates/uniq/../../tests/analysis_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_soundness-4ad8561ee02a6781.rmeta: crates/uniq/../../tests/analysis_soundness.rs Cargo.toml

crates/uniq/../../tests/analysis_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
