/root/repo/target/debug/deps/fd_properties-a80af0cc79c97018.d: crates/uniq/../../tests/fd_properties.rs

/root/repo/target/debug/deps/fd_properties-a80af0cc79c97018: crates/uniq/../../tests/fd_properties.rs

crates/uniq/../../tests/fd_properties.rs:
