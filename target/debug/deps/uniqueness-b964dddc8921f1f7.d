/root/repo/target/debug/deps/uniqueness-b964dddc8921f1f7.d: crates/uniq/src/lib.rs

/root/repo/target/debug/deps/uniqueness-b964dddc8921f1f7: crates/uniq/src/lib.rs

crates/uniq/src/lib.rs:
