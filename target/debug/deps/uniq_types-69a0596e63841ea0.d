/root/repo/target/debug/deps/uniq_types-69a0596e63841ea0.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

/root/repo/target/debug/deps/libuniq_types-69a0596e63841ea0.rlib: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

/root/repo/target/debug/deps/libuniq_types-69a0596e63841ea0.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/hash.rs:
crates/types/src/ident.rs:
crates/types/src/tri.rs:
crates/types/src/value.rs:
