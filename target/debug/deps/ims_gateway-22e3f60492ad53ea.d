/root/repo/target/debug/deps/ims_gateway-22e3f60492ad53ea.d: crates/bench/benches/ims_gateway.rs Cargo.toml

/root/repo/target/debug/deps/libims_gateway-22e3f60492ad53ea.rmeta: crates/bench/benches/ims_gateway.rs Cargo.toml

crates/bench/benches/ims_gateway.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
