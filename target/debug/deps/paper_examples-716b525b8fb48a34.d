/root/repo/target/debug/deps/paper_examples-716b525b8fb48a34.d: crates/uniq/../../tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-716b525b8fb48a34.rmeta: crates/uniq/../../tests/paper_examples.rs Cargo.toml

crates/uniq/../../tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
