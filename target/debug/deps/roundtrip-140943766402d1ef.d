/root/repo/target/debug/deps/roundtrip-140943766402d1ef.d: crates/uniq/../../tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-140943766402d1ef: crates/uniq/../../tests/roundtrip.rs

crates/uniq/../../tests/roundtrip.rs:
