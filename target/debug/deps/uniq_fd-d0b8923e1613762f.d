/root/repo/target/debug/deps/uniq_fd-d0b8923e1613762f.d: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

/root/repo/target/debug/deps/libuniq_fd-d0b8923e1613762f.rmeta: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

crates/fd/src/lib.rs:
crates/fd/src/attrset.rs:
crates/fd/src/fdset.rs:
crates/fd/src/keys.rs:
