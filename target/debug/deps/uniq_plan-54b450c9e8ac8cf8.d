/root/repo/target/debug/deps/uniq_plan-54b450c9e8ac8cf8.d: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

/root/repo/target/debug/deps/libuniq_plan-54b450c9e8ac8cf8.rmeta: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

crates/plan/src/lib.rs:
crates/plan/src/binder.rs:
crates/plan/src/bound.rs:
crates/plan/src/hostvars.rs:
crates/plan/src/norm.rs:
