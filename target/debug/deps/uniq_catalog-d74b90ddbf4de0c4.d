/root/repo/target/debug/deps/uniq_catalog-d74b90ddbf4de0c4.d: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_catalog-d74b90ddbf4de0c4.rmeta: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs Cargo.toml

crates/catalog/src/lib.rs:
crates/catalog/src/catalog.rs:
crates/catalog/src/database.rs:
crates/catalog/src/sample.rs:
crates/catalog/src/table.rs:
crates/catalog/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
