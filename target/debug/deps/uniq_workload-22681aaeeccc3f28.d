/root/repo/target/debug/deps/uniq_workload-22681aaeeccc3f28.d: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

/root/repo/target/debug/deps/libuniq_workload-22681aaeeccc3f28.rlib: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

/root/repo/target/debug/deps/libuniq_workload-22681aaeeccc3f28.rmeta: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

crates/workload/src/lib.rs:
crates/workload/src/corpus.rs:
crates/workload/src/driver.rs:
crates/workload/src/gen.rs:
crates/workload/src/instance.rs:
crates/workload/src/rng.rs:
