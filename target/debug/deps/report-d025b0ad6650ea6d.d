/root/repo/target/debug/deps/report-d025b0ad6650ea6d.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-d025b0ad6650ea6d.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
