/root/repo/target/debug/deps/report-d7bfa667d9dc9ced.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-d7bfa667d9dc9ced: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
