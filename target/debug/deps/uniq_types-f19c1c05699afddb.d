/root/repo/target/debug/deps/uniq_types-f19c1c05699afddb.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_types-f19c1c05699afddb.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/hash.rs:
crates/types/src/ident.rs:
crates/types/src/tri.rs:
crates/types/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
