/root/repo/target/debug/deps/uniq_plan-8562acb07f250d88.d: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_plan-8562acb07f250d88.rmeta: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs Cargo.toml

crates/plan/src/lib.rs:
crates/plan/src/binder.rs:
crates/plan/src/bound.rs:
crates/plan/src/hostvars.rs:
crates/plan/src/norm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
