/root/repo/target/debug/deps/uniqueness-af1564b3d5e54117.d: crates/uniq/src/lib.rs

/root/repo/target/debug/deps/libuniqueness-af1564b3d5e54117.rlib: crates/uniq/src/lib.rs

/root/repo/target/debug/deps/libuniqueness-af1564b3d5e54117.rmeta: crates/uniq/src/lib.rs

crates/uniq/src/lib.rs:
