/root/repo/target/debug/deps/uniq_plan-3b51d259175de434.d: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

/root/repo/target/debug/deps/uniq_plan-3b51d259175de434: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

crates/plan/src/lib.rs:
crates/plan/src/binder.rs:
crates/plan/src/bound.rs:
crates/plan/src/hostvars.rs:
crates/plan/src/norm.rs:
