/root/repo/target/debug/deps/rewrite_soundness-7aa4e31a53b522bc.d: crates/uniq/../../tests/rewrite_soundness.rs Cargo.toml

/root/repo/target/debug/deps/librewrite_soundness-7aa4e31a53b522bc.rmeta: crates/uniq/../../tests/rewrite_soundness.rs Cargo.toml

crates/uniq/../../tests/rewrite_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
