/root/repo/target/debug/deps/uniq_sql-aec2bff9691d8d6c.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

/root/repo/target/debug/deps/libuniq_sql-aec2bff9691d8d6c.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

/root/repo/target/debug/deps/libuniq_sql-aec2bff9691d8d6c.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
crates/sql/src/printer.rs:
