/root/repo/target/debug/deps/subquery_to_join-3c32dfc02b2cb2c7.d: crates/bench/benches/subquery_to_join.rs Cargo.toml

/root/repo/target/debug/deps/libsubquery_to_join-3c32dfc02b2cb2c7.rmeta: crates/bench/benches/subquery_to_join.rs Cargo.toml

crates/bench/benches/subquery_to_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
