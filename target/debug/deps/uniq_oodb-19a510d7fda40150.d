/root/repo/target/debug/deps/uniq_oodb-19a510d7fda40150.d: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_oodb-19a510d7fda40150.rmeta: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs Cargo.toml

crates/oodb/src/lib.rs:
crates/oodb/src/sample.rs:
crates/oodb/src/store.rs:
crates/oodb/src/strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
