/root/repo/target/debug/deps/uniq_fd-2989d00cabbbcd8b.d: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

/root/repo/target/debug/deps/libuniq_fd-2989d00cabbbcd8b.rlib: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

/root/repo/target/debug/deps/libuniq_fd-2989d00cabbbcd8b.rmeta: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

crates/fd/src/lib.rs:
crates/fd/src/attrset.rs:
crates/fd/src/fdset.rs:
crates/fd/src/keys.rs:
