/root/repo/target/debug/deps/uniq_ims-06f0be5efae4ca37.d: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_ims-06f0be5efae4ca37.rmeta: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs Cargo.toml

crates/ims/src/lib.rs:
crates/ims/src/dli.rs:
crates/ims/src/gateway.rs:
crates/ims/src/hierarchy.rs:
crates/ims/src/sample.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
