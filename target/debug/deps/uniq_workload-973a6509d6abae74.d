/root/repo/target/debug/deps/uniq_workload-973a6509d6abae74.d: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

/root/repo/target/debug/deps/uniq_workload-973a6509d6abae74: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

crates/workload/src/lib.rs:
crates/workload/src/corpus.rs:
crates/workload/src/driver.rs:
crates/workload/src/gen.rs:
crates/workload/src/instance.rs:
crates/workload/src/rng.rs:
