/root/repo/target/debug/deps/roundtrip-3e31d278be8e4bba.d: crates/uniq/../../tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-3e31d278be8e4bba.rmeta: crates/uniq/../../tests/roundtrip.rs Cargo.toml

crates/uniq/../../tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
