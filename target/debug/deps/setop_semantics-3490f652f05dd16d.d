/root/repo/target/debug/deps/setop_semantics-3490f652f05dd16d.d: crates/uniq/../../tests/setop_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsetop_semantics-3490f652f05dd16d.rmeta: crates/uniq/../../tests/setop_semantics.rs Cargo.toml

crates/uniq/../../tests/setop_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
