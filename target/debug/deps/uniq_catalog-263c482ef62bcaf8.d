/root/repo/target/debug/deps/uniq_catalog-263c482ef62bcaf8.d: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

/root/repo/target/debug/deps/libuniq_catalog-263c482ef62bcaf8.rmeta: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

crates/catalog/src/lib.rs:
crates/catalog/src/catalog.rs:
crates/catalog/src/database.rs:
crates/catalog/src/sample.rs:
crates/catalog/src/table.rs:
crates/catalog/src/validate.rs:
