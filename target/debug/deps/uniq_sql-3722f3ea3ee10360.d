/root/repo/target/debug/deps/uniq_sql-3722f3ea3ee10360.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_sql-3722f3ea3ee10360.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs Cargo.toml

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
crates/sql/src/printer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
