/root/repo/target/debug/deps/analysis_soundness-7a7479e15d4847c4.d: crates/uniq/../../tests/analysis_soundness.rs

/root/repo/target/debug/deps/analysis_soundness-7a7479e15d4847c4: crates/uniq/../../tests/analysis_soundness.rs

crates/uniq/../../tests/analysis_soundness.rs:
