/root/repo/target/debug/deps/report-3c8a8b9752620398.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-3c8a8b9752620398: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
