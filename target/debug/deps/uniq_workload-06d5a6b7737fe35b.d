/root/repo/target/debug/deps/uniq_workload-06d5a6b7737fe35b.d: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

/root/repo/target/debug/deps/libuniq_workload-06d5a6b7737fe35b.rmeta: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs

crates/workload/src/lib.rs:
crates/workload/src/corpus.rs:
crates/workload/src/driver.rs:
crates/workload/src/gen.rs:
crates/workload/src/instance.rs:
crates/workload/src/rng.rs:
