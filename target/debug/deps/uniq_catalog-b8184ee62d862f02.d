/root/repo/target/debug/deps/uniq_catalog-b8184ee62d862f02.d: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

/root/repo/target/debug/deps/uniq_catalog-b8184ee62d862f02: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

crates/catalog/src/lib.rs:
crates/catalog/src/catalog.rs:
crates/catalog/src/database.rs:
crates/catalog/src/sample.rs:
crates/catalog/src/table.rs:
crates/catalog/src/validate.rs:
