/root/repo/target/debug/deps/uniq_engine-b4c5dfb839f899d7.d: crates/engine/src/lib.rs crates/engine/src/exec.rs crates/engine/src/explain.rs crates/engine/src/plancache.rs crates/engine/src/session.rs crates/engine/src/setops.rs crates/engine/src/stats.rs

/root/repo/target/debug/deps/libuniq_engine-b4c5dfb839f899d7.rmeta: crates/engine/src/lib.rs crates/engine/src/exec.rs crates/engine/src/explain.rs crates/engine/src/plancache.rs crates/engine/src/session.rs crates/engine/src/setops.rs crates/engine/src/stats.rs

crates/engine/src/lib.rs:
crates/engine/src/exec.rs:
crates/engine/src/explain.rs:
crates/engine/src/plancache.rs:
crates/engine/src/session.rs:
crates/engine/src/setops.rs:
crates/engine/src/stats.rs:
