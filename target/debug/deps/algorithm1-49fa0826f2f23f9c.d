/root/repo/target/debug/deps/algorithm1-49fa0826f2f23f9c.d: crates/bench/benches/algorithm1.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithm1-49fa0826f2f23f9c.rmeta: crates/bench/benches/algorithm1.rs Cargo.toml

crates/bench/benches/algorithm1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
