/root/repo/target/debug/deps/uniqueness-2c73f8851ca6598a.d: crates/uniq/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuniqueness-2c73f8851ca6598a.rmeta: crates/uniq/src/lib.rs Cargo.toml

crates/uniq/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
