/root/repo/target/debug/deps/uniq_sql-ef69233e2f9c182b.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

/root/repo/target/debug/deps/libuniq_sql-ef69233e2f9c182b.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
crates/sql/src/printer.rs:
