/root/repo/target/debug/deps/cross_system-39d5b46c5123b937.d: crates/uniq/../../tests/cross_system.rs Cargo.toml

/root/repo/target/debug/deps/libcross_system-39d5b46c5123b937.rmeta: crates/uniq/../../tests/cross_system.rs Cargo.toml

crates/uniq/../../tests/cross_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
