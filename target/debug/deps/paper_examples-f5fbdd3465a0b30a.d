/root/repo/target/debug/deps/paper_examples-f5fbdd3465a0b30a.d: crates/uniq/../../tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-f5fbdd3465a0b30a: crates/uniq/../../tests/paper_examples.rs

crates/uniq/../../tests/paper_examples.rs:
