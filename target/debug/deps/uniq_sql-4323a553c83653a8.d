/root/repo/target/debug/deps/uniq_sql-4323a553c83653a8.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

/root/repo/target/debug/deps/uniq_sql-4323a553c83653a8: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs crates/sql/src/printer.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
crates/sql/src/printer.rs:
