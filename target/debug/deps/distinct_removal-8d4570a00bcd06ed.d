/root/repo/target/debug/deps/distinct_removal-8d4570a00bcd06ed.d: crates/bench/benches/distinct_removal.rs Cargo.toml

/root/repo/target/debug/deps/libdistinct_removal-8d4570a00bcd06ed.rmeta: crates/bench/benches/distinct_removal.rs Cargo.toml

crates/bench/benches/distinct_removal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
