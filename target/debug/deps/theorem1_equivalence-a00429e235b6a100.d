/root/repo/target/debug/deps/theorem1_equivalence-a00429e235b6a100.d: crates/uniq/../../tests/theorem1_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1_equivalence-a00429e235b6a100.rmeta: crates/uniq/../../tests/theorem1_equivalence.rs Cargo.toml

crates/uniq/../../tests/theorem1_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
