/root/repo/target/debug/deps/uniq_bench-f1b6906980f534cd.d: crates/bench/src/lib.rs crates/bench/src/baseline.rs

/root/repo/target/debug/deps/libuniq_bench-f1b6906980f534cd.rmeta: crates/bench/src/lib.rs crates/bench/src/baseline.rs

crates/bench/src/lib.rs:
crates/bench/src/baseline.rs:
