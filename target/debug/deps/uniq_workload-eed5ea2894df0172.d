/root/repo/target/debug/deps/uniq_workload-eed5ea2894df0172.d: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_workload-eed5ea2894df0172.rmeta: crates/workload/src/lib.rs crates/workload/src/corpus.rs crates/workload/src/driver.rs crates/workload/src/gen.rs crates/workload/src/instance.rs crates/workload/src/rng.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/corpus.rs:
crates/workload/src/driver.rs:
crates/workload/src/gen.rs:
crates/workload/src/instance.rs:
crates/workload/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
