/root/repo/target/debug/deps/cross_system-733085aeef683d38.d: crates/uniq/../../tests/cross_system.rs

/root/repo/target/debug/deps/cross_system-733085aeef683d38: crates/uniq/../../tests/cross_system.rs

crates/uniq/../../tests/cross_system.rs:
