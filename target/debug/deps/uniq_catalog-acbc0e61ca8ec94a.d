/root/repo/target/debug/deps/uniq_catalog-acbc0e61ca8ec94a.d: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

/root/repo/target/debug/deps/libuniq_catalog-acbc0e61ca8ec94a.rlib: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

/root/repo/target/debug/deps/libuniq_catalog-acbc0e61ca8ec94a.rmeta: crates/catalog/src/lib.rs crates/catalog/src/catalog.rs crates/catalog/src/database.rs crates/catalog/src/sample.rs crates/catalog/src/table.rs crates/catalog/src/validate.rs

crates/catalog/src/lib.rs:
crates/catalog/src/catalog.rs:
crates/catalog/src/database.rs:
crates/catalog/src/sample.rs:
crates/catalog/src/table.rs:
crates/catalog/src/validate.rs:
