/root/repo/target/debug/deps/rewrite_soundness-238127fa76446322.d: crates/uniq/../../tests/rewrite_soundness.rs

/root/repo/target/debug/deps/rewrite_soundness-238127fa76446322: crates/uniq/../../tests/rewrite_soundness.rs

crates/uniq/../../tests/rewrite_soundness.rs:
