/root/repo/target/debug/deps/report-2ead48937a7f02b2.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-2ead48937a7f02b2.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
