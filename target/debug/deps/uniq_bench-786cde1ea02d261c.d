/root/repo/target/debug/deps/uniq_bench-786cde1ea02d261c.d: crates/bench/src/lib.rs crates/bench/src/baseline.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_bench-786cde1ea02d261c.rmeta: crates/bench/src/lib.rs crates/bench/src/baseline.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
