/root/repo/target/debug/deps/norm_properties-5920653f88e677b0.d: crates/uniq/../../tests/norm_properties.rs Cargo.toml

/root/repo/target/debug/deps/libnorm_properties-5920653f88e677b0.rmeta: crates/uniq/../../tests/norm_properties.rs Cargo.toml

crates/uniq/../../tests/norm_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
