/root/repo/target/debug/deps/uniq_fd-3551375f7021c115.d: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_fd-3551375f7021c115.rmeta: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs Cargo.toml

crates/fd/src/lib.rs:
crates/fd/src/attrset.rs:
crates/fd/src/fdset.rs:
crates/fd/src/keys.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
