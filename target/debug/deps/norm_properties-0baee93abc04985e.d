/root/repo/target/debug/deps/norm_properties-0baee93abc04985e.d: crates/uniq/../../tests/norm_properties.rs

/root/repo/target/debug/deps/norm_properties-0baee93abc04985e: crates/uniq/../../tests/norm_properties.rs

crates/uniq/../../tests/norm_properties.rs:
