/root/repo/target/debug/deps/uniq_bench-77d0059d2b00bddc.d: crates/bench/src/lib.rs crates/bench/src/baseline.rs

/root/repo/target/debug/deps/uniq_bench-77d0059d2b00bddc: crates/bench/src/lib.rs crates/bench/src/baseline.rs

crates/bench/src/lib.rs:
crates/bench/src/baseline.rs:
