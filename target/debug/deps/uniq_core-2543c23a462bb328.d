/root/repo/target/debug/deps/uniq_core-2543c23a462bb328.d: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/analysis.rs crates/core/src/pipeline.rs crates/core/src/rewrite/mod.rs crates/core/src/rewrite/distinct.rs crates/core/src/rewrite/join_elim.rs crates/core/src/rewrite/setops.rs crates/core/src/rewrite/subquery.rs crates/core/src/rewrite/util.rs crates/core/src/rules.rs crates/core/src/theorem1.rs crates/core/src/unbind.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_core-2543c23a462bb328.rmeta: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/analysis.rs crates/core/src/pipeline.rs crates/core/src/rewrite/mod.rs crates/core/src/rewrite/distinct.rs crates/core/src/rewrite/join_elim.rs crates/core/src/rewrite/setops.rs crates/core/src/rewrite/subquery.rs crates/core/src/rewrite/util.rs crates/core/src/rules.rs crates/core/src/theorem1.rs crates/core/src/unbind.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/algorithm1.rs:
crates/core/src/analysis.rs:
crates/core/src/pipeline.rs:
crates/core/src/rewrite/mod.rs:
crates/core/src/rewrite/distinct.rs:
crates/core/src/rewrite/join_elim.rs:
crates/core/src/rewrite/setops.rs:
crates/core/src/rewrite/subquery.rs:
crates/core/src/rewrite/util.rs:
crates/core/src/rules.rs:
crates/core/src/theorem1.rs:
crates/core/src/unbind.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
