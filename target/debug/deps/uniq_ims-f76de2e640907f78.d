/root/repo/target/debug/deps/uniq_ims-f76de2e640907f78.d: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

/root/repo/target/debug/deps/uniq_ims-f76de2e640907f78: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

crates/ims/src/lib.rs:
crates/ims/src/dli.rs:
crates/ims/src/gateway.rs:
crates/ims/src/hierarchy.rs:
crates/ims/src/sample.rs:
