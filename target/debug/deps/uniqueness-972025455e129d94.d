/root/repo/target/debug/deps/uniqueness-972025455e129d94.d: crates/uniq/src/lib.rs

/root/repo/target/debug/deps/libuniqueness-972025455e129d94.rmeta: crates/uniq/src/lib.rs

crates/uniq/src/lib.rs:
