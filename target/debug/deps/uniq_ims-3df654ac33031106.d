/root/repo/target/debug/deps/uniq_ims-3df654ac33031106.d: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

/root/repo/target/debug/deps/libuniq_ims-3df654ac33031106.rmeta: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

crates/ims/src/lib.rs:
crates/ims/src/dli.rs:
crates/ims/src/gateway.rs:
crates/ims/src/hierarchy.rs:
crates/ims/src/sample.rs:
