/root/repo/target/debug/deps/uniq_fd-73fbe0ee2330e85f.d: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

/root/repo/target/debug/deps/uniq_fd-73fbe0ee2330e85f: crates/fd/src/lib.rs crates/fd/src/attrset.rs crates/fd/src/fdset.rs crates/fd/src/keys.rs

crates/fd/src/lib.rs:
crates/fd/src/attrset.rs:
crates/fd/src/fdset.rs:
crates/fd/src/keys.rs:
