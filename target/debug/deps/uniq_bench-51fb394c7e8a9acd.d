/root/repo/target/debug/deps/uniq_bench-51fb394c7e8a9acd.d: crates/bench/src/lib.rs crates/bench/src/baseline.rs

/root/repo/target/debug/deps/libuniq_bench-51fb394c7e8a9acd.rlib: crates/bench/src/lib.rs crates/bench/src/baseline.rs

/root/repo/target/debug/deps/libuniq_bench-51fb394c7e8a9acd.rmeta: crates/bench/src/lib.rs crates/bench/src/baseline.rs

crates/bench/src/lib.rs:
crates/bench/src/baseline.rs:
