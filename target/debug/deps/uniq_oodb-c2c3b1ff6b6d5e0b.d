/root/repo/target/debug/deps/uniq_oodb-c2c3b1ff6b6d5e0b.d: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

/root/repo/target/debug/deps/libuniq_oodb-c2c3b1ff6b6d5e0b.rmeta: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

crates/oodb/src/lib.rs:
crates/oodb/src/sample.rs:
crates/oodb/src/store.rs:
crates/oodb/src/strategies.rs:
