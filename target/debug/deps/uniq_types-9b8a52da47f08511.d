/root/repo/target/debug/deps/uniq_types-9b8a52da47f08511.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

/root/repo/target/debug/deps/libuniq_types-9b8a52da47f08511.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/hash.rs:
crates/types/src/ident.rs:
crates/types/src/tri.rs:
crates/types/src/value.rs:
