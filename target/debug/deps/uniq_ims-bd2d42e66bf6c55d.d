/root/repo/target/debug/deps/uniq_ims-bd2d42e66bf6c55d.d: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

/root/repo/target/debug/deps/libuniq_ims-bd2d42e66bf6c55d.rlib: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

/root/repo/target/debug/deps/libuniq_ims-bd2d42e66bf6c55d.rmeta: crates/ims/src/lib.rs crates/ims/src/dli.rs crates/ims/src/gateway.rs crates/ims/src/hierarchy.rs crates/ims/src/sample.rs

crates/ims/src/lib.rs:
crates/ims/src/dli.rs:
crates/ims/src/gateway.rs:
crates/ims/src/hierarchy.rs:
crates/ims/src/sample.rs:
