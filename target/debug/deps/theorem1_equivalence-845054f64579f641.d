/root/repo/target/debug/deps/theorem1_equivalence-845054f64579f641.d: crates/uniq/../../tests/theorem1_equivalence.rs

/root/repo/target/debug/deps/theorem1_equivalence-845054f64579f641: crates/uniq/../../tests/theorem1_equivalence.rs

crates/uniq/../../tests/theorem1_equivalence.rs:
