/root/repo/target/debug/deps/fd_properties-e66a3f9244600a57.d: crates/uniq/../../tests/fd_properties.rs Cargo.toml

/root/repo/target/debug/deps/libfd_properties-e66a3f9244600a57.rmeta: crates/uniq/../../tests/fd_properties.rs Cargo.toml

crates/uniq/../../tests/fd_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
