/root/repo/target/debug/deps/uniqueness-6b9df4b579d64908.d: crates/uniq/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuniqueness-6b9df4b579d64908.rmeta: crates/uniq/src/lib.rs Cargo.toml

crates/uniq/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
