/root/repo/target/debug/deps/uniq_engine-24410643a6fcef9e.d: crates/engine/src/lib.rs crates/engine/src/exec.rs crates/engine/src/explain.rs crates/engine/src/plancache.rs crates/engine/src/session.rs crates/engine/src/setops.rs crates/engine/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libuniq_engine-24410643a6fcef9e.rmeta: crates/engine/src/lib.rs crates/engine/src/exec.rs crates/engine/src/explain.rs crates/engine/src/plancache.rs crates/engine/src/session.rs crates/engine/src/setops.rs crates/engine/src/stats.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/exec.rs:
crates/engine/src/explain.rs:
crates/engine/src/plancache.rs:
crates/engine/src/session.rs:
crates/engine/src/setops.rs:
crates/engine/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
