/root/repo/target/debug/deps/uniq_oodb-673cdd3af5243f89.d: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

/root/repo/target/debug/deps/uniq_oodb-673cdd3af5243f89: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

crates/oodb/src/lib.rs:
crates/oodb/src/sample.rs:
crates/oodb/src/store.rs:
crates/oodb/src/strategies.rs:
