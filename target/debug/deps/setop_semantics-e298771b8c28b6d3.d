/root/repo/target/debug/deps/setop_semantics-e298771b8c28b6d3.d: crates/uniq/../../tests/setop_semantics.rs

/root/repo/target/debug/deps/setop_semantics-e298771b8c28b6d3: crates/uniq/../../tests/setop_semantics.rs

crates/uniq/../../tests/setop_semantics.rs:
