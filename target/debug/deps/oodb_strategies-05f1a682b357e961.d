/root/repo/target/debug/deps/oodb_strategies-05f1a682b357e961.d: crates/bench/benches/oodb_strategies.rs Cargo.toml

/root/repo/target/debug/deps/liboodb_strategies-05f1a682b357e961.rmeta: crates/bench/benches/oodb_strategies.rs Cargo.toml

crates/bench/benches/oodb_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
