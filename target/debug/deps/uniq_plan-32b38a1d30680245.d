/root/repo/target/debug/deps/uniq_plan-32b38a1d30680245.d: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

/root/repo/target/debug/deps/libuniq_plan-32b38a1d30680245.rlib: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

/root/repo/target/debug/deps/libuniq_plan-32b38a1d30680245.rmeta: crates/plan/src/lib.rs crates/plan/src/binder.rs crates/plan/src/bound.rs crates/plan/src/hostvars.rs crates/plan/src/norm.rs

crates/plan/src/lib.rs:
crates/plan/src/binder.rs:
crates/plan/src/bound.rs:
crates/plan/src/hostvars.rs:
crates/plan/src/norm.rs:
