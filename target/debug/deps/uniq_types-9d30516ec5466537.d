/root/repo/target/debug/deps/uniq_types-9d30516ec5466537.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

/root/repo/target/debug/deps/uniq_types-9d30516ec5466537: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/hash.rs crates/types/src/ident.rs crates/types/src/tri.rs crates/types/src/value.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/hash.rs:
crates/types/src/ident.rs:
crates/types/src/tri.rs:
crates/types/src/value.rs:
