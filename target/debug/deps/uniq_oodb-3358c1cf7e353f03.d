/root/repo/target/debug/deps/uniq_oodb-3358c1cf7e353f03.d: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

/root/repo/target/debug/deps/libuniq_oodb-3358c1cf7e353f03.rlib: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

/root/repo/target/debug/deps/libuniq_oodb-3358c1cf7e353f03.rmeta: crates/oodb/src/lib.rs crates/oodb/src/sample.rs crates/oodb/src/store.rs crates/oodb/src/strategies.rs

crates/oodb/src/lib.rs:
crates/oodb/src/sample.rs:
crates/oodb/src/store.rs:
crates/oodb/src/strategies.rs:
