/root/repo/target/debug/deps/intersect_rewrite-cbc538de5211f582.d: crates/bench/benches/intersect_rewrite.rs Cargo.toml

/root/repo/target/debug/deps/libintersect_rewrite-cbc538de5211f582.rmeta: crates/bench/benches/intersect_rewrite.rs Cargo.toml

crates/bench/benches/intersect_rewrite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
