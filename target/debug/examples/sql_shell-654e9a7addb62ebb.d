/root/repo/target/debug/examples/sql_shell-654e9a7addb62ebb.d: crates/uniq/../../examples/sql_shell.rs

/root/repo/target/debug/examples/sql_shell-654e9a7addb62ebb: crates/uniq/../../examples/sql_shell.rs

crates/uniq/../../examples/sql_shell.rs:
