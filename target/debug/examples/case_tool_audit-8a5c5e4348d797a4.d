/root/repo/target/debug/examples/case_tool_audit-8a5c5e4348d797a4.d: crates/uniq/../../examples/case_tool_audit.rs

/root/repo/target/debug/examples/case_tool_audit-8a5c5e4348d797a4: crates/uniq/../../examples/case_tool_audit.rs

crates/uniq/../../examples/case_tool_audit.rs:
