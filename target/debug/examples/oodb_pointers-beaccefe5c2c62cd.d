/root/repo/target/debug/examples/oodb_pointers-beaccefe5c2c62cd.d: crates/uniq/../../examples/oodb_pointers.rs Cargo.toml

/root/repo/target/debug/examples/liboodb_pointers-beaccefe5c2c62cd.rmeta: crates/uniq/../../examples/oodb_pointers.rs Cargo.toml

crates/uniq/../../examples/oodb_pointers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
