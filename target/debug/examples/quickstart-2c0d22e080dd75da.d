/root/repo/target/debug/examples/quickstart-2c0d22e080dd75da.d: crates/uniq/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-2c0d22e080dd75da.rmeta: crates/uniq/../../examples/quickstart.rs Cargo.toml

crates/uniq/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
