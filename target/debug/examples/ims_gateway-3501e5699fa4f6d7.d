/root/repo/target/debug/examples/ims_gateway-3501e5699fa4f6d7.d: crates/uniq/../../examples/ims_gateway.rs Cargo.toml

/root/repo/target/debug/examples/libims_gateway-3501e5699fa4f6d7.rmeta: crates/uniq/../../examples/ims_gateway.rs Cargo.toml

crates/uniq/../../examples/ims_gateway.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
