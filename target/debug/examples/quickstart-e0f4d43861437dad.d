/root/repo/target/debug/examples/quickstart-e0f4d43861437dad.d: crates/uniq/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e0f4d43861437dad: crates/uniq/../../examples/quickstart.rs

crates/uniq/../../examples/quickstart.rs:
