/root/repo/target/debug/examples/oodb_pointers-cd9da7d295b487b2.d: crates/uniq/../../examples/oodb_pointers.rs

/root/repo/target/debug/examples/oodb_pointers-cd9da7d295b487b2: crates/uniq/../../examples/oodb_pointers.rs

crates/uniq/../../examples/oodb_pointers.rs:
