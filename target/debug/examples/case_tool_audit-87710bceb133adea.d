/root/repo/target/debug/examples/case_tool_audit-87710bceb133adea.d: crates/uniq/../../examples/case_tool_audit.rs Cargo.toml

/root/repo/target/debug/examples/libcase_tool_audit-87710bceb133adea.rmeta: crates/uniq/../../examples/case_tool_audit.rs Cargo.toml

crates/uniq/../../examples/case_tool_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
