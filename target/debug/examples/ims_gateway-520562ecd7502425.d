/root/repo/target/debug/examples/ims_gateway-520562ecd7502425.d: crates/uniq/../../examples/ims_gateway.rs

/root/repo/target/debug/examples/ims_gateway-520562ecd7502425: crates/uniq/../../examples/ims_gateway.rs

crates/uniq/../../examples/ims_gateway.rs:
