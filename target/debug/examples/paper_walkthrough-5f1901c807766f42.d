/root/repo/target/debug/examples/paper_walkthrough-5f1901c807766f42.d: crates/uniq/../../examples/paper_walkthrough.rs

/root/repo/target/debug/examples/paper_walkthrough-5f1901c807766f42: crates/uniq/../../examples/paper_walkthrough.rs

crates/uniq/../../examples/paper_walkthrough.rs:
