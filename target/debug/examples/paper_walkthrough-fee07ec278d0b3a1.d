/root/repo/target/debug/examples/paper_walkthrough-fee07ec278d0b3a1.d: crates/uniq/../../examples/paper_walkthrough.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_walkthrough-fee07ec278d0b3a1.rmeta: crates/uniq/../../examples/paper_walkthrough.rs Cargo.toml

crates/uniq/../../examples/paper_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
