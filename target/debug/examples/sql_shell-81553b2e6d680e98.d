/root/repo/target/debug/examples/sql_shell-81553b2e6d680e98.d: crates/uniq/../../examples/sql_shell.rs Cargo.toml

/root/repo/target/debug/examples/libsql_shell-81553b2e6d680e98.rmeta: crates/uniq/../../examples/sql_shell.rs Cargo.toml

crates/uniq/../../examples/sql_shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
