(function() {
    const implementors = Object.fromEntries([["uniq_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.AsRef.html\" title=\"trait core::convert::AsRef\">AsRef</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.str.html\">str</a>&gt; for <a class=\"struct\" href=\"uniq_types/ident/struct.ColumnName.html\" title=\"struct uniq_types::ident::ColumnName\">ColumnName</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.AsRef.html\" title=\"trait core::convert::AsRef\">AsRef</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.str.html\">str</a>&gt; for <a class=\"struct\" href=\"uniq_types/ident/struct.HostVarName.html\" title=\"struct uniq_types::ident::HostVarName\">HostVarName</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.AsRef.html\" title=\"trait core::convert::AsRef\">AsRef</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.str.html\">str</a>&gt; for <a class=\"struct\" href=\"uniq_types/ident/struct.TableName.html\" title=\"struct uniq_types::ident::TableName\">TableName</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[1177]}